//! Result containers, CSV output, ASCII charts and the per-attack
//! damage/containment metrics for the experiments.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Damage and containment of one attack run, relative to an
/// honest-baseline run of the same scenario — the per-cell metrics of the
/// `matrix_robustness` experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct Damage {
    /// Honest-goodput loss in percent of the baseline: positive when the
    /// attack hurt the honest receiver, near zero when contained
    /// (negative values mean the honest flow did *better* under attack —
    /// run-to-run noise).
    pub honest_loss_pct: f64,
    /// Attacker throughput in percent above its entitlement — the goodput
    /// the same receiver earned in the honest-baseline run (or a static
    /// fair share when no baseline exists): what the misbehaviour bought.
    pub attacker_excess_pct: f64,
    /// Seconds from attack onset until the edge router first locked the
    /// attacker out or flagged its guessing tally; `None` when no
    /// detection fired (e.g. unprotected variants).
    pub time_to_lockout_secs: Option<f64>,
}

/// Compute [`Damage`] from raw throughputs.
///
/// `baseline_honest_bps` is the honest receiver's goodput in the
/// attack-free baseline run, `honest_bps` the same receiver under attack,
/// `attacker_bps` the attacker's delivered throughput and `entitled_bps`
/// its counterfactual goodput (the honest-baseline run of the same
/// receiver, or a fair share when no baseline exists). `detection_secs`
/// is the absolute detection time; `onset_secs` the attack onset
/// (detection is reported relative to it, clamped at zero).
pub fn damage(
    baseline_honest_bps: f64,
    honest_bps: f64,
    attacker_bps: f64,
    entitled_bps: f64,
    detection_secs: Option<f64>,
    onset_secs: f64,
) -> Damage {
    let honest_loss_pct = if baseline_honest_bps > 0.0 {
        (baseline_honest_bps - honest_bps) / baseline_honest_bps * 100.0
    } else {
        0.0
    };
    let attacker_excess_pct = if entitled_bps > 0.0 {
        (attacker_bps - entitled_bps) / entitled_bps * 100.0
    } else {
        0.0
    };
    Damage {
        honest_loss_pct,
        attacker_excess_pct,
        time_to_lockout_secs: detection_secs.map(|t| (t - onset_secs).max(0.0)),
    }
}

/// A labeled time/value series.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label (e.g. "F1").
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build from per-second values starting at `t0` with step `dt`.
    pub fn from_values(label: &str, t0: f64, dt: f64, values: &[f64]) -> Self {
        Series {
            label: label.to_string(),
            points: values
                .iter()
                .enumerate()
                .map(|(i, &v)| (t0 + i as f64 * dt, v))
                .collect(),
        }
    }

    /// Centered moving average over `w` points (the paper's throughput
    /// curves are visibly smoothed).
    ///
    /// The window shrinks *symmetrically* near the edges: point `i`
    /// averages `±min(w/2, i, n-1-i)` neighbours, so the first and last
    /// points pass through unsmoothed instead of absorbing a one-sided
    /// (forward- or backward-biased) window. The window is always
    /// centered, so an even `w` behaves like `w + 1`.
    pub fn smoothed(&self, w: usize) -> Series {
        let n = self.points.len();
        let points = (0..n)
            .map(|i| {
                let half = (w / 2).min(i).min(n - 1 - i);
                let (lo, hi) = (i - half, i + half + 1);
                let mean = self.points[lo..hi].iter().map(|p| p.1).sum::<f64>() / (hi - lo) as f64;
                (self.points[i].0, mean)
            })
            .collect();
        Series {
            label: self.label.clone(),
            points,
        }
    }

    /// Mean of the y values.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
        }
    }
}

/// A rectangular result table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Column names.
    pub headers: Vec<String>,
    /// Row values.
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    /// A table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.headers.len(), "row width");
        self.rows.push(row);
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Serialize several series into a wide CSV (shared x column; series are
/// sampled at their own x values, which coincide for our experiments).
pub fn series_csv(series: &[Series]) -> String {
    let mut out = String::from("x");
    for s in series {
        let _ = write!(out, ",{}", s.label);
    }
    out.push('\n');
    let n = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..n {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|p| p.0))
            .unwrap_or(i as f64);
        let _ = write!(out, "{x}");
        for s in series {
            match s.points.get(i) {
                Some(p) => {
                    let _ = write!(out, ",{}", p.1);
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Write several series as CSV to `path`.
pub fn write_series_csv(series: &[Series], path: impl AsRef<Path>) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, series_csv(series))
}

/// A quick ASCII line chart (one glyph per series), for terminal output of
/// the figure regenerators.
pub fn ascii_chart(series: &[Series], width: usize, height: usize, y_label: &str) -> String {
    let glyphs = ['*', '+', 'o', 'x', '#', '@', '%', '&'];
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (ymin, mut ymax) = (0.0f64, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in &s.points {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymax = ymax.max(y);
        }
    }
    if !xmin.is_finite() || xmax <= xmin {
        return String::from("(no data)\n");
    }
    ymax = ymax.max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for &(x, y) in &s.points {
            let cx = ((x - xmin) / (xmax - xmin) * (width as f64 - 1.0)).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height as f64 - 1.0)).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{y_label} (max {ymax:.0})");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    let _ = writeln!(out, "+{} x: {:.1} .. {:.1}", "-".repeat(width), xmin, xmax);
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} = {}", glyphs[si % glyphs.len()], s.label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_from_values_and_mean() {
        let s = Series::from_values("a", 0.0, 1.0, &[1.0, 2.0, 3.0]);
        assert_eq!(s.points, vec![(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn smoothing_flattens_spikes() {
        let s = Series::from_values("a", 0.0, 1.0, &[0.0, 0.0, 10.0, 0.0, 0.0]);
        let sm = s.smoothed(5);
        assert!(sm.points[2].1 < 5.0);
        // Mass is conserved enough that the mean stays put.
        assert!((sm.mean() - s.mean()).abs() < 1.0);
    }

    /// Regression: the window must shrink symmetrically at the edges.
    /// The old clamp averaged only *forward* points at `i = 0` (and only
    /// backward points at `i = n-1`), biasing the first and last `w/2`
    /// points of every paper curve toward the interior.
    #[test]
    fn smoothing_shrinks_symmetrically_at_edges() {
        let s = Series::from_values("a", 0.0, 1.0, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let sm = s.smoothed(5);
        // Endpoints pass through unsmoothed (half-width 0), the next
        // points average three, the center all five.
        let want = [1.0, 2.0, 3.0, 4.0, 5.0];
        for (p, w) in sm.points.iter().zip(want) {
            assert!((p.1 - w).abs() < 1e-12, "{:?}", sm.points);
        }
        // A symmetric series smooths to a symmetric series.
        let s = Series::from_values("b", 0.0, 1.0, &[9.0, 0.0, 0.0, 0.0, 9.0]);
        let sm = s.smoothed(3);
        assert_eq!(sm.points[0].1, sm.points[4].1, "{:?}", sm.points);
        assert_eq!(sm.points[1].1, sm.points[3].1, "{:?}", sm.points);
        // Degenerate windows and empty series stay well-defined.
        assert_eq!(s.smoothed(1).points, s.points);
        assert!(Series::from_values("c", 0.0, 1.0, &[])
            .smoothed(5)
            .points
            .is_empty());
    }

    #[test]
    fn table_round_trip() {
        let mut t = Table::new(&["n", "avg"]);
        t.push(vec![1.0, 250.5]);
        t.push(vec![2.0, 248.0]);
        let csv = t.to_csv();
        assert!(csv.starts_with("n,avg\n1,250.5\n2,248\n"), "{csv}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.push(vec![1.0]);
    }

    #[test]
    fn series_csv_layout() {
        let a = Series::from_values("a", 0.0, 1.0, &[1.0, 2.0]);
        let b = Series::from_values("b", 0.0, 1.0, &[3.0, 4.0]);
        let csv = series_csv(&[a, b]);
        assert_eq!(csv, "x,a,b\n0,1,3\n1,2,4\n");
    }

    #[test]
    fn ascii_chart_renders() {
        let s = Series::from_values("load", 0.0, 1.0, &[0.0, 5.0, 10.0, 5.0, 0.0]);
        let chart = ascii_chart(&[s], 20, 5, "bps");
        assert!(chart.contains('*'));
        assert!(chart.contains("load"));
    }

    #[test]
    fn ascii_chart_handles_empty() {
        assert_eq!(ascii_chart(&[], 10, 5, "y"), "(no data)\n");
    }

    #[test]
    fn damage_reports_loss_excess_and_detection_delay() {
        let d = damage(200_000.0, 50_000.0, 750_000.0, 250_000.0, Some(30.0), 20.0);
        assert!((d.honest_loss_pct - 75.0).abs() < 1e-9);
        assert!((d.attacker_excess_pct - 200.0).abs() < 1e-9);
        assert_eq!(d.time_to_lockout_secs, Some(10.0));
    }

    #[test]
    fn damage_handles_contained_attacks_and_missing_detection() {
        // Contained: honest flow untouched, attacker at fair share.
        let d = damage(200_000.0, 200_000.0, 250_000.0, 250_000.0, None, 20.0);
        assert_eq!(d.honest_loss_pct, 0.0);
        assert_eq!(d.attacker_excess_pct, 0.0);
        assert_eq!(d.time_to_lockout_secs, None);
        // Detection before onset clamps at zero; zero baselines don't 1/0.
        let d = damage(0.0, 10.0, 10.0, 0.0, Some(5.0), 20.0);
        assert_eq!(d.honest_loss_pct, 0.0);
        assert_eq!(d.attacker_excess_pct, 0.0);
        assert_eq!(d.time_to_lockout_secs, Some(0.0));
    }
}
