//! The topology subsystem: one generic spec/builder layer behind every
//! scenario shape.
//!
//! The paper's evaluation runs on a single-bottleneck dumbbell (§5.1),
//! but its robustness claims are about multicast *trees*: how much damage
//! an inflated-subscription attacker does depends on its placement
//! relative to the bottleneck links it shares with honest receivers. This
//! module generalizes the hard-wired dumbbell into a family of
//! parameterized topologies built by one code path:
//!
//! * [`Topology::Dumbbell`] — the paper's shape; `Dumbbell::build` in
//!   [`crate::dumbbell`] is now a thin wrapper over this builder and
//!   produces byte-identical runs,
//! * [`Topology::ParkingLot`] — `N` chained bottleneck links with
//!   cross-traffic CBRs entering and leaving at each hop (the classic
//!   multi-bottleneck fairness shape),
//! * [`Topology::Star`] — one hub, `arms` bottleneck spokes,
//! * [`Topology::BalancedTree`] — a balanced `fanout`-ary distribution
//!   tree with receivers at the leaves and configurable attacker
//!   placement (leaf versus interior subtree) via
//!   [`Placement`](mcc_attack::Placement).
//!
//! A [`TopologySpec`] holds the shape plus the session population
//! ([`McastSessionSpec`], TCP count, optional CBR); [`TopologySpec::build`]
//! assembles the simulator and returns [`BuiltTopology`] handles. Receiver
//! attachment is resolved from each receiver's
//! [`AttackPlan::placement`](mcc_attack::AttackPlan::placement): honest
//! receivers round-robin over the topology's attachment points, attackers
//! can be pinned to a leaf or an interior router.

use crate::scenario::Variant;
use mcc_attack::{AttackPlan, Placement};
use mcc_flid::{
    CohortReceiver, FlidConfig, FlidReceiver, FlidSender, Mode, ReplicatedReceiver,
    ReplicatedSender, ThresholdReceiver, ThresholdSender,
};
use mcc_netsim::prelude::*;
use mcc_netsim::topology::{nary_parent, nary_tree_size};
use mcc_sigma::{SigmaConfig, SigmaEdgeModule};
use mcc_simcore::{SimDuration, SimTime};
use mcc_tcp::{RenoConfig, RenoSender, TcpSink};
use mcc_traffic::{CbrConfig, CbrSource, CountingSink};

/// Loss threshold θ of the RLM-style [`Variant::Threshold`] sessions
/// (RLM's default, paper §3.1.2).
pub(crate) const THRESHOLD_THETA: f64 = 0.25;

/// The slot duration every protected session (and its SIGMA edge
/// modules) runs at — the paper's 250 ms FLID-DS setting. Consumers
/// converting router slot numbers to seconds must use this constant.
pub const SIGMA_SLOT: SimDuration = SimDuration::from_millis(250);

/// Rate and flow-id base of the per-hop cross-traffic CBRs of
/// [`Topology::ParkingLot`] (the spec-level [`CbrSpec`] keeps flow 200).
const PER_HOP_CBR_FLOW_BASE: u32 = 210;

/// One receiver of a multicast session.
#[derive(Clone, Debug)]
pub struct ReceiverSpec {
    /// When the receiver joins the session.
    pub join_at: SimTime,
    /// When the receiver departs the session mid-run, dropping every
    /// layer and unsubscribing ([`SimTime::MAX`] = stays to the end —
    /// the historical static-membership behaviour).
    pub leave_at: SimTime,
    /// The adversary strategy the receiver runs
    /// ([`AttackPlan::honest`] for a well-behaved receiver). The plan's
    /// [`Placement`] selects the attachment point in multi-router
    /// topologies.
    pub adversary: AttackPlan,
    /// Propagation delay of the receiver's access link.
    pub access_delay: SimDuration,
    /// Capacity of the receiver's access link, bit/s (paper default
    /// 10 Mbps; the workload engine draws heterogeneous rates here).
    pub access_bps: u64,
    /// Population multiplier: `1` builds one full receiver agent; `n > 1`
    /// builds a [`CohortReceiver`] representing `n` statistically
    /// identical receivers behind one edge interface — O(buckets) state
    /// and events, count-weighted metrics, exact for synchronized slots
    /// (FLID variants only).
    pub cohort: u64,
}

impl Default for ReceiverSpec {
    fn default() -> Self {
        ReceiverSpec {
            join_at: SimTime::ZERO,
            leave_at: SimTime::MAX,
            adversary: AttackPlan::honest(),
            access_delay: SimDuration::from_millis(10),
            access_bps: 10_000_000,
            cohort: 1,
        }
    }
}

/// One multicast session.
#[derive(Clone, Debug)]
pub struct McastSessionSpec {
    /// FLID-DS (hardened) or FLID-DL (original).
    pub variant: Variant,
    /// Number of groups (paper default 10).
    pub n_groups: u32,
    /// The session's receivers.
    pub receivers: Vec<ReceiverSpec>,
}

impl McastSessionSpec {
    /// A session with `k` honest receivers joining at t = 0.
    pub fn honest(variant: Variant, k: usize) -> Self {
        McastSessionSpec {
            variant,
            n_groups: 10,
            receivers: vec![ReceiverSpec::default(); k],
        }
    }
}

/// Optional on-off CBR background (Figures 8d/8e).
#[derive(Clone, Debug)]
pub struct CbrSpec {
    /// Rate while on, bit/s.
    pub rate_bps: u64,
    /// `(on, off)` periods; `None` = always on within the window.
    pub on_off: Option<(SimDuration, SimDuration)>,
    /// Window start.
    pub start: SimTime,
    /// Window end.
    pub stop: SimTime,
}

/// Handles of one built multicast session.
#[derive(Clone, Debug)]
pub struct SessionHandle {
    /// The session's configuration.
    pub cfg: FlidConfig,
    /// Sender agent.
    pub sender: AgentId,
    /// Receiver agents, in spec order. A cohort spec contributes ONE
    /// agent here (its weight in `weights` carries the multiplicity).
    pub receivers: Vec<AgentId>,
    /// Receivers represented by each agent in `receivers` (1 for an
    /// individual, `n` for a `cohort(n)` spec). Count-weighted session
    /// metrics divide by `weights.iter().sum()`, not `receivers.len()`.
    pub weights: Vec<u64>,
}

/// Handles of one TCP session.
#[derive(Clone, Copy, Debug)]
pub struct TcpHandle {
    /// Reno sender agent.
    pub sender: AgentId,
    /// Sink agent (throughput is measured here).
    pub sink: AgentId,
}

/// The shape of the core (router) graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// The paper's single-bottleneck dumbbell (§5.1): senders behind
    /// router `A`, receivers behind edge router `B`, one bottleneck in
    /// between.
    Dumbbell,
    /// `bottlenecks` chained bottleneck links `R0 ═ R1 ═ … ═ Rk`.
    /// Senders attach at `R0`; the receiver attachment points are
    /// `R1..=Rk` (hop `i` sits behind `i + 1` bottlenecks). With
    /// `per_hop_cbr` set, a CBR of that rate enters at `R_i` and leaves
    /// at `R_{i+1}` for every hop — local cross traffic on each
    /// bottleneck.
    ParkingLot {
        /// Number of chained bottleneck links (≥ 1).
        bottlenecks: usize,
        /// Per-hop cross-traffic CBR rate, bit/s (`None` = no cross
        /// traffic).
        per_hop_cbr: Option<u64>,
    },
    /// One hub with `arms` bottleneck spokes; senders attach at the hub,
    /// receivers round-robin over the arm routers.
    Star {
        /// Number of spokes (≥ 1).
        arms: usize,
    },
    /// A balanced `fanout`-ary multicast tree of the given `depth`
    /// (depth 0 = just the root). Every parent→child link is a
    /// bottleneck-class link; senders attach at the root and receivers
    /// round-robin over the `fanout^depth` leaf routers.
    BalancedTree {
        /// Levels below the root.
        depth: u32,
        /// Children per interior router (≥ 1).
        fanout: u32,
    },
}

impl Topology {
    /// A short label for reports and plots.
    pub fn label(&self) -> String {
        match self {
            Topology::Dumbbell => "dumbbell".into(),
            Topology::ParkingLot { bottlenecks, .. } => format!("parking_lot({bottlenecks})"),
            Topology::Star { arms } => format!("star({arms})"),
            Topology::BalancedTree { depth, fanout } => format!("tree(d{depth},f{fanout})"),
        }
    }
}

/// The whole scenario: a [`Topology`] plus link parameters and the
/// session population — the generic form of the historical
/// `DumbbellSpec`.
#[derive(Clone, Debug)]
pub struct TopologySpec {
    /// The core graph shape.
    pub topology: Topology,
    /// Scenario seed (fully determines the run).
    pub seed: u64,
    /// Capacity of every bottleneck-class link, bit/s.
    pub bottleneck_bps: u64,
    /// Propagation delay of every bottleneck-class link.
    pub bottleneck_delay: SimDuration,
    /// Side-link propagation delay (sender side; receiver side comes from
    /// each [`ReceiverSpec`]).
    pub side_delay: SimDuration,
    /// Round-trip used to size buffers (buffer = 2 × rate × rtt).
    pub buffer_rtt: SimDuration,
    /// Multicast sessions.
    pub mcast: Vec<McastSessionSpec>,
    /// Number of TCP Reno sessions.
    pub tcp: usize,
    /// Optional CBR background (source at the ingress, sink behind the
    /// first attachment point).
    pub cbr: Option<CbrSpec>,
    /// Additional CBR backgrounds (the workload engine's background
    /// mix); each gets its own source/sink pair and flow id `201 + i`.
    pub extra_cbr: Vec<CbrSpec>,
    /// Event-driven membership workload: expanded into concrete
    /// [`ReceiverSpec`]s / background traffic by [`TopologySpec::build`]
    /// before anything is constructed, so the expansion is a pure
    /// function of `(seed, spec)`. `None` = the static population above.
    pub workload: Option<crate::workload::WorkloadSpec>,
    /// Monitor bin width.
    pub monitor_bin: SimDuration,
}

impl TopologySpec {
    /// Paper §5.1 defaults around the given shape: 20 ms bottlenecks,
    /// 10 ms / 10 Mbps side links, 2×BDP buffers on an 80 ms round trip.
    pub fn new(topology: Topology, seed: u64, bottleneck_bps: u64) -> Self {
        TopologySpec {
            topology,
            seed,
            bottleneck_bps,
            bottleneck_delay: SimDuration::from_millis(20),
            side_delay: SimDuration::from_millis(10),
            buffer_rtt: SimDuration::from_millis(80),
            mcast: Vec::new(),
            tcp: 0,
            cbr: None,
            extra_cbr: Vec::new(),
            workload: None,
            monitor_bin: SimDuration::from_secs(1),
        }
    }
}

/// The assembled core (router) graph, before sessions are attached.
struct Core {
    /// All core routers: `[A, B]` for the dumbbell, chain order for the
    /// parking lot, `[hub, arms…]` for the star, breadth-first for trees.
    routers: Vec<NodeId>,
    /// Where sender hosts (multicast, TCP, CBR sources) attach.
    ingress: NodeId,
    /// Receiver attachment cycle: [`Placement::Auto`] receivers
    /// round-robin over these.
    attach: Vec<NodeId>,
    /// Forward-direction bottleneck links, in construction order.
    bottlenecks: Vec<LinkId>,
}

impl Core {
    /// Resolve a receiver placement to its attachment router.
    /// `auto_seq` is the receiver's index in the round-robin sequence of
    /// `Auto` receivers.
    fn resolve(&self, topology: &Topology, placement: Placement, auto_seq: usize) -> NodeId {
        match placement {
            Placement::Auto => self.attach[auto_seq % self.attach.len()],
            Placement::Leaf(i) => self.attach[i % self.attach.len()],
            Placement::Interior { depth, leaf } => match *topology {
                Topology::Dumbbell => self.attach[0],
                Topology::ParkingLot { .. } => {
                    self.routers[(depth as usize).min(self.routers.len() - 1)]
                }
                Topology::Star { arms } => {
                    if depth == 0 {
                        self.routers[0]
                    } else {
                        self.attach[leaf % arms]
                    }
                }
                Topology::BalancedTree {
                    depth: tree_depth,
                    fanout,
                } => {
                    let leaves = (fanout as usize).pow(tree_depth);
                    let mut i = self.routers.len() - leaves + (leaf % leaves);
                    for _ in depth..tree_depth {
                        i = nary_parent(i, fanout);
                    }
                    self.routers[i]
                }
            },
        }
    }
}

/// A built scenario over any [`Topology`].
pub struct BuiltTopology {
    /// The simulator (run it!).
    pub sim: Sim,
    /// The shape this was built from.
    pub topology: Topology,
    /// All core routers (see [`Topology`] for the order).
    pub routers: Vec<NodeId>,
    /// Receiver attachment cycle (the dumbbell's edge router `B` is
    /// `attach[0]`).
    pub attach: Vec<NodeId>,
    /// Routers that host receiver access links — where SIGMA modules are
    /// installed when a protected session exists, in first-use order.
    pub edges: Vec<NodeId>,
    /// Forward-direction bottleneck links.
    pub bottlenecks: Vec<LinkId>,
    /// Multicast sessions.
    pub sessions: Vec<SessionHandle>,
    /// Per session, per receiver: the router its access link hangs off.
    pub receiver_routers: Vec<Vec<NodeId>>,
    /// TCP sessions.
    pub tcp: Vec<TcpHandle>,
    /// Sink of the spec-level [`CbrSpec`] background, when requested.
    pub cbr_sink: Option<AgentId>,
    /// Sinks of the workload engine's background CBR mix, in spec order.
    pub extra_cbr_sinks: Vec<AgentId>,
    /// One cross-traffic sink per parking-lot hop, in hop order (empty
    /// unless [`Topology::ParkingLot`] set `per_hop_cbr`).
    pub hop_cbr_sinks: Vec<AgentId>,
}

impl TopologySpec {
    /// Assemble the scenario. Construction order (nodes, links, agents,
    /// group registrations) is a function of the spec alone, so equal
    /// specs build bit-identical simulations. A [`TopologySpec::workload`]
    /// is expanded first (also a pure function of the spec) — a workload
    /// that generates nothing leaves the spec, and therefore the build,
    /// untouched.
    pub fn build(self) -> BuiltTopology {
        let mut spec = self;
        if let Some(w) = spec.workload.take() {
            w.apply(&mut spec);
        }
        let spec = spec;
        let mut sim = Sim::new(spec.seed, spec.monitor_bin);
        let bottleneck_buffer =
            (2.0 * spec.bottleneck_bps as f64 * spec.buffer_rtt.as_secs_f64() / 8.0) as u64;
        let side_buffer = (2.0 * 10_000_000.0 * spec.buffer_rtt.as_secs_f64() / 8.0) as u64;

        let bottleneck_link = |sim: &mut Sim, from: NodeId, to: NodeId| {
            let (fwd, _) = sim.add_duplex_link(
                from,
                to,
                spec.bottleneck_bps,
                spec.bottleneck_delay,
                Queue::drop_tail(bottleneck_buffer),
                Queue::drop_tail(bottleneck_buffer),
            );
            fwd
        };

        // The core graph. Node and link creation order per shape is part
        // of the byte-compat contract (the dumbbell arm reproduces the
        // historical `Dumbbell::build` exactly).
        let core = match spec.topology {
            Topology::Dumbbell => {
                let a = sim.add_node();
                let b = sim.add_node();
                let bn = bottleneck_link(&mut sim, a, b);
                Core {
                    routers: vec![a, b],
                    ingress: a,
                    attach: vec![b],
                    bottlenecks: vec![bn],
                }
            }
            Topology::ParkingLot { bottlenecks, .. } => {
                assert!(bottlenecks >= 1, "a parking lot needs at least one hop");
                let routers: Vec<NodeId> = (0..=bottlenecks).map(|_| sim.add_node()).collect();
                let links = routers
                    .windows(2)
                    .map(|w| bottleneck_link(&mut sim, w[0], w[1]))
                    .collect();
                Core {
                    ingress: routers[0],
                    attach: routers[1..].to_vec(),
                    bottlenecks: links,
                    routers,
                }
            }
            Topology::Star { arms } => {
                assert!(arms >= 1, "a star needs at least one arm");
                let hub = sim.add_node();
                let mut routers = vec![hub];
                let mut links = Vec::new();
                for _ in 0..arms {
                    let arm = sim.add_node();
                    links.push(bottleneck_link(&mut sim, hub, arm));
                    routers.push(arm);
                }
                Core {
                    ingress: hub,
                    attach: routers[1..].to_vec(),
                    bottlenecks: links,
                    routers,
                }
            }
            Topology::BalancedTree { depth, fanout } => {
                assert!(fanout >= 1, "a tree needs a positive fanout");
                let total = nary_tree_size(depth, fanout);
                let routers: Vec<NodeId> = (0..total).map(|_| sim.add_node()).collect();
                let links = (1..total)
                    .map(|i| bottleneck_link(&mut sim, routers[nary_parent(i, fanout)], routers[i]))
                    .collect();
                let leaves = (fanout as usize).pow(depth);
                Core {
                    ingress: routers[0],
                    attach: routers[total - leaves..].to_vec(),
                    bottlenecks: links,
                    routers,
                }
            }
        };

        let add_sender_host = |sim: &mut Sim| {
            let h = sim.add_node();
            sim.add_duplex_link(
                h,
                core.ingress,
                10_000_000,
                spec.side_delay,
                Queue::drop_tail(side_buffer),
                Queue::drop_tail(side_buffer),
            );
            h
        };

        // Per-session configurations, computed up front so the SIGMA
        // modules can be scoped (collusion guard) before agents exist.
        let cfgs: Vec<FlidConfig> = spec
            .mcast
            .iter()
            .enumerate()
            .map(|(si, m)| {
                let base = 1000 * (si as u32 + 1);
                FlidConfig::paper(
                    (1..=m.n_groups).map(|g| GroupAddr(base + g)).collect(),
                    GroupAddr(base),
                    FlowId(si as u32),
                    m.variant.protected(),
                )
            })
            .collect();

        // Resolve every receiver's attachment router up front (pure
        // computation): the SIGMA install set is the distinct routers in
        // first-use order.
        let mut auto_seq = 0usize;
        let receiver_routers: Vec<Vec<NodeId>> = spec
            .mcast
            .iter()
            .map(|m| {
                m.receivers
                    .iter()
                    .map(|r| {
                        let placement = r.adversary.placement();
                        let node = core.resolve(&spec.topology, placement, auto_seq);
                        if placement == Placement::Auto {
                            auto_seq += 1;
                        }
                        node
                    })
                    .collect()
            })
            .collect();
        let mut edges: Vec<NodeId> = Vec::new();
        for node in receiver_routers.iter().flatten() {
            if !edges.contains(node) {
                edges.push(*node);
            }
        }
        if edges.is_empty() {
            edges.push(core.attach[0]);
        }

        // Any protected session installs SIGMA at every edge router; the
        // module is generic, so one instance per router serves every
        // session (smallest slot wins for maintenance granularity). A
        // `FlidDsGuard` session additionally scopes the §4.2 collusion
        // guard to its groups — the guard is protocol-specific (it must
        // know the layering), so it covers the first such session only.
        let protected_slot = spec
            .mcast
            .iter()
            .filter(|m| m.variant.protected())
            .map(|_| SIGMA_SLOT)
            .min();
        if let Some(slot) = protected_slot {
            let mut sigma_cfg = SigmaConfig::new(slot);
            if let Some((si, _)) = spec
                .mcast
                .iter()
                .enumerate()
                .find(|(_, m)| m.variant == Variant::FlidDsGuard)
            {
                sigma_cfg = sigma_cfg.with_guard(cfgs[si].groups.clone());
            }
            for &edge in &edges {
                sim.set_edge_module(edge, Box::new(SigmaEdgeModule::new(sigma_cfg.clone())));
            }
        }

        let mut sessions = Vec::new();
        for (si, m) in spec.mcast.iter().enumerate() {
            let cfg = cfgs[si].clone();
            let sender_host = add_sender_host(&mut sim);
            for g in cfg.groups.iter().chain([&cfg.control_group]) {
                sim.register_group(*g, sender_host);
            }
            let sender_agent: Box<dyn Agent> = match m.variant {
                Variant::FlidDl | Variant::FlidDs | Variant::FlidDsGuard => {
                    Box::new(FlidSender::new(cfg.clone()))
                }
                Variant::Replicated => Box::new(ReplicatedSender::new(cfg.clone())),
                Variant::Threshold => Box::new(ThresholdSender::new(cfg.clone(), THRESHOLD_THETA)),
            };
            let sender = sim.add_agent(sender_host, sender_agent, SimTime::ZERO);
            let mut receivers = Vec::new();
            let mut weights = Vec::new();
            for (ri, r) in m.receivers.iter().enumerate() {
                assert!(r.cohort >= 1, "cohort multiplier must be at least 1");
                let edge = receiver_routers[si][ri];
                let h = sim.add_node();
                // Heterogeneous access: each receiver's link runs at its
                // own rate, with its buffer sized to that rate (the
                // default 10 Mbps reproduces the historical side buffer).
                let access_buffer =
                    (2.0 * r.access_bps as f64 * spec.buffer_rtt.as_secs_f64() / 8.0) as u64;
                sim.add_duplex_link(
                    edge,
                    h,
                    r.access_bps,
                    r.access_delay,
                    Queue::drop_tail(access_buffer),
                    Queue::drop_tail(access_buffer),
                );
                let router = m.variant.protected().then_some(edge);
                let agent: Box<dyn Agent> = match m.variant {
                    Variant::FlidDl | Variant::FlidDs | Variant::FlidDsGuard => {
                        let mode = match router {
                            Some(edge) => Mode::Ds { router: edge },
                            None => Mode::Dl,
                        };
                        if r.cohort > 1 {
                            // `uniform` with an explicit lifetime: one
                            // stratum, all members sharing the spec's
                            // join/leave instants (the agent itself
                            // starts at `join_at`, so members join at 0
                            // relative to it).
                            let mut agent = CohortReceiver::new(
                                cfg.clone(),
                                mode,
                                vec![mcc_flid::CohortMember {
                                    count: r.cohort,
                                    join_at: SimTime::ZERO,
                                    leave_at: r.leave_at,
                                    plan: r.adversary.clone(),
                                }],
                            );
                            agent.set_control_delay(r.access_delay);
                            Box::new(agent)
                        } else {
                            let mut agent = FlidReceiver::with_adversary(
                                cfg.clone(),
                                mode,
                                r.adversary.clone(),
                            );
                            agent.set_leave_at(r.leave_at);
                            agent.set_control_delay(r.access_delay);
                            Box::new(agent)
                        }
                    }
                    Variant::Replicated => {
                        assert_eq!(
                            r.cohort, 1,
                            "cohort receivers are FLID-only; expand Replicated \
                             receivers individually"
                        );
                        let mut agent = ReplicatedReceiver::with_adversary(
                            cfg.clone(),
                            router,
                            r.adversary.clone(),
                        );
                        agent.set_leave_at(r.leave_at);
                        Box::new(agent)
                    }
                    Variant::Threshold => {
                        assert_eq!(
                            r.cohort, 1,
                            "cohort receivers are FLID-only; expand Threshold \
                             receivers individually"
                        );
                        let mut agent = ThresholdReceiver::with_adversary(
                            cfg.clone(),
                            THRESHOLD_THETA,
                            router,
                            r.adversary.clone(),
                        );
                        agent.set_leave_at(r.leave_at);
                        Box::new(agent)
                    }
                };
                receivers.push(sim.add_agent(h, agent, r.join_at));
                weights.push(r.cohort);
            }
            sessions.push(SessionHandle {
                cfg,
                sender,
                receivers,
                weights,
            });
        }

        let mut tcp = Vec::new();
        for j in 0..spec.tcp {
            let sh = add_sender_host(&mut sim);
            let rh = sim.add_node();
            sim.add_duplex_link(
                core.attach[j % core.attach.len()],
                rh,
                10_000_000,
                spec.side_delay,
                Queue::drop_tail(side_buffer),
                Queue::drop_tail(side_buffer),
            );
            let sink = sim.add_agent(rh, Box::new(TcpSink::default()), SimTime::ZERO);
            let cfg = RenoConfig::bulk(sink, FlowId(100 + j as u32));
            let sender = sim.add_agent(
                sh,
                Box::new(RenoSender::new(cfg)),
                // Staggered starts desynchronize the flows.
                SimTime::from_millis(37 * j as u64 + 11),
            );
            tcp.push(TcpHandle { sender, sink });
        }

        let mut cbr_sink = None;
        if let Some(c) = &spec.cbr {
            let sh = add_sender_host(&mut sim);
            let rh = sim.add_node();
            sim.add_duplex_link(
                core.attach[0],
                rh,
                10_000_000,
                spec.side_delay,
                Queue::drop_tail(side_buffer),
                Queue::drop_tail(side_buffer),
            );
            let sink = sim.add_agent(rh, Box::new(CountingSink::default()), SimTime::ZERO);
            let cfg = CbrConfig {
                rate_bps: c.rate_bps,
                packet_bits: 576 * 8,
                dest: Dest::Agent(sink),
                flow: FlowId(200),
                start: c.start,
                stop: c.stop,
                on_off: c.on_off,
            };
            sim.add_agent(sh, Box::new(CbrSource::new(cfg)), SimTime::ZERO);
            cbr_sink = Some(sink);
        }

        // The workload engine's background mix: one source/sink pair per
        // extra CBR, flows 201 upward (the spec-level CBR keeps 200).
        let mut extra_cbr_sinks = Vec::new();
        for (i, c) in spec.extra_cbr.iter().enumerate() {
            let sh = add_sender_host(&mut sim);
            let rh = sim.add_node();
            sim.add_duplex_link(
                core.attach[i % core.attach.len()],
                rh,
                10_000_000,
                spec.side_delay,
                Queue::drop_tail(side_buffer),
                Queue::drop_tail(side_buffer),
            );
            let sink = sim.add_agent(rh, Box::new(CountingSink::default()), SimTime::ZERO);
            let cfg = CbrConfig {
                rate_bps: c.rate_bps,
                packet_bits: 576 * 8,
                dest: Dest::Agent(sink),
                flow: FlowId(201 + i as u32),
                start: c.start,
                stop: c.stop,
                on_off: c.on_off,
            };
            sim.add_agent(sh, Box::new(CbrSource::new(cfg)), SimTime::ZERO);
            extra_cbr_sinks.push(sink);
        }

        // Parking-lot cross traffic: one CBR per hop, entering at the
        // hop's upstream router and leaving right after the bottleneck.
        let mut hop_cbr_sinks = Vec::new();
        if let Topology::ParkingLot {
            per_hop_cbr: Some(rate),
            ..
        } = spec.topology
        {
            for (hop, w) in core.routers.windows(2).enumerate() {
                let sh = sim.add_node();
                sim.add_duplex_link(
                    sh,
                    w[0],
                    10_000_000,
                    spec.side_delay,
                    Queue::drop_tail(side_buffer),
                    Queue::drop_tail(side_buffer),
                );
                let rh = sim.add_node();
                sim.add_duplex_link(
                    w[1],
                    rh,
                    10_000_000,
                    spec.side_delay,
                    Queue::drop_tail(side_buffer),
                    Queue::drop_tail(side_buffer),
                );
                let sink = sim.add_agent(rh, Box::new(CountingSink::default()), SimTime::ZERO);
                let cfg = CbrConfig::steady(
                    rate,
                    576 * 8,
                    Dest::Agent(sink),
                    FlowId(PER_HOP_CBR_FLOW_BASE + hop as u32),
                    SimTime::ZERO,
                    SimTime::MAX,
                );
                sim.add_agent(sh, Box::new(CbrSource::new(cfg)), SimTime::ZERO);
                hop_cbr_sinks.push(sink);
            }
        }

        sim.finalize();
        BuiltTopology {
            sim,
            topology: spec.topology,
            routers: core.routers,
            attach: core.attach,
            edges,
            bottlenecks: core.bottlenecks,
            sessions,
            receiver_routers,
            tcp,
            cbr_sink,
            extra_cbr_sinks,
            hop_cbr_sinks,
        }
    }
}

/// Average delivered throughput of an agent over `[from, to)` seconds —
/// the one measurement-window convention shared by every handle type
/// ([`BuiltTopology`] and [`crate::dumbbell::Dumbbell`] both delegate
/// here).
pub fn throughput_bps(sim: &Sim, agent: AgentId, from: u64, to: u64) -> f64 {
    sim.monitor()
        .agent_throughput_bps(agent, SimTime::from_secs(from), SimTime::from_secs(to))
}

/// Per-bin throughput series of an agent out to `horizon` seconds.
pub fn series_bps(sim: &Sim, agent: AgentId, horizon: u64) -> Vec<f64> {
    sim.monitor()
        .agent_series_bps(agent, SimTime::from_secs(horizon))
}

/// A receiver agent as its concrete FLID type.
pub fn flid_receiver(sim: &Sim, id: AgentId) -> &FlidReceiver {
    sim.agent_as::<FlidReceiver>(id)
        .expect("agent is a FlidReceiver")
}

/// A sender agent as its concrete FLID type.
pub fn flid_sender(sim: &Sim, id: AgentId) -> &FlidSender {
    sim.agent_as::<FlidSender>(id)
        .expect("agent is a FlidSender")
}

/// A cohort agent as its concrete type (a `cohort(n)` receiver spec).
pub fn cohort_receiver(sim: &Sim, id: AgentId) -> &CohortReceiver {
    sim.agent_as::<CohortReceiver>(id)
        .expect("agent is a CohortReceiver (spec had cohort > 1)")
}

impl BuiltTopology {
    /// Run until `secs` of simulated time. With `MCC_THREADS=AxB`
    /// (`B > 1`) the run goes through the conservative parallel-in-time
    /// core — automatically partitioned, bit-identical results, serial
    /// fallback when the scenario is too small to shard. With `--trace` a
    /// flight recorder rides the run (see `crate::obs`).
    pub fn run_secs(&mut self, secs: u64) {
        crate::obs::run_sim(&mut self.sim, SimTime::from_secs(secs));
    }

    /// Average delivered throughput of an agent over `[from, to)` seconds.
    pub fn throughput_bps(&self, agent: AgentId, from: u64, to: u64) -> f64 {
        throughput_bps(&self.sim, agent, from, to)
    }

    /// Per-bin throughput series of an agent out to `horizon` seconds.
    pub fn series_bps(&self, agent: AgentId, horizon: u64) -> Vec<f64> {
        series_bps(&self.sim, agent, horizon)
    }

    /// The SIGMA module at one edge router, when installed.
    pub fn sigma_at(&self, node: NodeId) -> Option<&SigmaEdgeModule> {
        self.sim.edge_as::<SigmaEdgeModule>(node)
    }

    /// All installed SIGMA modules, in edge order.
    pub fn sigmas(&self) -> impl Iterator<Item = &SigmaEdgeModule> {
        self.edges.iter().filter_map(|&e| self.sigma_at(e))
    }

    /// A receiver agent as its concrete type.
    pub fn receiver(&self, id: AgentId) -> &FlidReceiver {
        flid_receiver(&self.sim, id)
    }

    /// A cohort agent as its concrete type (panics for individual
    /// receivers — check the spec's `cohort` field first).
    pub fn cohort(&self, id: AgentId) -> &CohortReceiver {
        cohort_receiver(&self.sim, id)
    }

    /// Count-weighted mean per-receiver throughput of a session over
    /// `[from, to)` seconds — identical to averaging over the expanded
    /// individual population. Individual receivers contribute their
    /// monitor throughput at weight 1; cohorts their per-receiver
    /// weighted ledger at weight `n`.
    pub fn session_mean_receiver_bps(&self, session: &SessionHandle, from: u64, to: u64) -> f64 {
        let mut num = 0.0;
        let mut den = 0u64;
        for (&id, &w) in session.receivers.iter().zip(&session.weights) {
            let per_receiver = if w > 1 {
                self.cohort(id).weighted_throughput_bps(from, to)
            } else {
                self.throughput_bps(id, from, to)
            };
            num += w as f64 * per_receiver;
            den += w;
        }
        if den == 0 {
            0.0
        } else {
            num / den as f64
        }
    }

    /// A sender agent as its concrete type.
    pub fn sender(&self, id: AgentId) -> &FlidSender {
        flid_sender(&self.sim, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Units;

    fn tree_spec(depth: u32, fanout: u32, receivers: usize) -> TopologySpec {
        let mut spec = TopologySpec::new(Topology::BalancedTree { depth, fanout }, 1, 500.kbps());
        spec.mcast = vec![McastSessionSpec::honest(Variant::FlidDs, receivers)];
        spec
    }

    #[test]
    fn tree_core_counts_and_leaf_attach() {
        let t = tree_spec(2, 2, 4).build();
        // 7 routers, 6 bottleneck links, receivers on the 4 leaves.
        assert_eq!(t.routers.len(), 7);
        assert_eq!(t.bottlenecks.len(), 6);
        assert_eq!(t.attach.len(), 4);
        assert_eq!(t.attach, t.routers[3..].to_vec());
        // Auto receivers tile the leaves one each.
        assert_eq!(t.receiver_routers[0], t.attach);
        // Every leaf edge router got a SIGMA module (protected session).
        assert_eq!(t.edges, t.attach);
        assert_eq!(t.sigmas().count(), 4);
    }

    #[test]
    fn cohort_spec_builds_one_agent_with_count_weighted_metrics() {
        let build = |cohort: bool| {
            let mut spec = TopologySpec::new(Topology::Dumbbell, 1, 1_000_000);
            let session = if cohort {
                McastSessionSpec::new(Variant::FlidDs).receiver(ReceiverSpec::new().cohort(3))
            } else {
                McastSessionSpec::honest(Variant::FlidDs, 3)
            };
            spec.mcast = vec![session];
            let mut t = spec.build();
            t.run_secs(30);
            t
        };
        let ind = build(false);
        let coh = build(true);
        assert_eq!(coh.sessions[0].receivers.len(), 1);
        assert_eq!(coh.sessions[0].weights, vec![3]);
        assert_eq!(ind.sessions[0].weights, vec![1, 1, 1]);
        let agent = coh.sessions[0].receivers[0];
        let cohort = coh.cohort(agent);
        assert_eq!(cohort.receiver_count(), 3);
        assert_eq!(cohort.bucket_count(), 1);
        // Count-weighted per-receiver throughput equals the expanded
        // form's (synchronized receivers: every individual sees the same
        // bytes, and the cohort's ledger is exactly that series).
        let w_ind = ind.session_mean_receiver_bps(&ind.sessions[0], 10, 30);
        let w_coh = coh.session_mean_receiver_bps(&coh.sessions[0], 10, 30);
        assert!(
            (w_ind - w_coh).abs() < 1.0,
            "weighted per-receiver throughput: {w_ind} vs {w_coh}"
        );
    }

    #[test]
    fn interior_placement_resolves_to_the_leaf_ancestor() {
        let mut spec = tree_spec(2, 2, 2);
        spec.mcast[0].receivers.push(
            ReceiverSpec::default()
                .adversary(AttackPlan::honest().at(Placement::Interior { depth: 1, leaf: 3 })),
        );
        let t = spec.build();
        // Leaf 3 is routers[6]; its depth-1 ancestor is routers[2].
        assert_eq!(t.receiver_routers[0][2], t.routers[2]);
        // The interior router is now an edge (SIGMA installed there too).
        assert!(t.edges.contains(&t.routers[2]));
    }

    #[test]
    fn parking_lot_chains_bottlenecks_and_places_per_hop_cbr() {
        let mut spec = TopologySpec::new(
            Topology::ParkingLot {
                bottlenecks: 3,
                per_hop_cbr: Some(100_000),
            },
            2,
            1.mbps(),
        );
        spec.mcast = vec![McastSessionSpec::honest(Variant::FlidDl, 3)];
        let mut t = spec.build();
        assert_eq!(t.routers.len(), 4);
        assert_eq!(t.bottlenecks.len(), 3);
        assert_eq!(t.attach, t.routers[1..].to_vec());
        assert_eq!(t.hop_cbr_sinks.len(), 3, "one cross-traffic sink per hop");
        t.run_secs(10);
        for (hop, &sink) in t.hop_cbr_sinks.iter().enumerate() {
            let bps = t.throughput_bps(sink, 2, 10);
            assert!(bps > 60_000.0, "hop {hop} cross traffic starved: {bps}");
        }
    }

    #[test]
    fn star_arms_attach_round_robin() {
        let mut spec = TopologySpec::new(Topology::Star { arms: 3 }, 3, 500.kbps());
        spec.mcast = vec![McastSessionSpec::honest(Variant::FlidDl, 6)];
        let t = spec.build();
        assert_eq!(t.routers.len(), 4);
        assert_eq!(t.attach.len(), 3);
        assert_eq!(
            t.receiver_routers[0],
            vec![
                t.attach[0],
                t.attach[1],
                t.attach[2],
                t.attach[0],
                t.attach[1],
                t.attach[2]
            ]
        );
    }

    #[test]
    fn tree_session_delivers_to_every_leaf() {
        let mut t = tree_spec(2, 2, 4).build();
        t.run_secs(20);
        for (i, &r) in t.sessions[0].receivers.iter().enumerate() {
            let bps = t.throughput_bps(r, 5, 20);
            assert!(bps > 50_000.0, "leaf {i} starved: {bps}");
        }
    }
}
