//! The experiment registry: every figure and ablation of the evaluation
//! as a registered, enumerable object.
//!
//! Each entry implements [`Experiment`] — an `id`, the paper figure it
//! reproduces, a one-line description, a registered seed, and a
//! `run(&Params)` that maps the parameter bag to canonical JSON. The
//! [`registry`] is the single source of truth consumed by
//! `runner::figure_experiments`, the `figures` CLI in `mcc-bench`, and
//! the registry tests; adding a scenario is one [`ExperimentDef`] row
//! here instead of a new binary.
//!
//! The twelve figure entries reproduce the exact names, seeds and JSON
//! bodies of the pre-registry `figure_experiments` suite, so a default
//! run stays byte-identical to the historical
//! `results/BENCH_all_figures.json` (pinned by `tests/registry.rs`).

use crate::config::Params;
use crate::experiments;
use crate::runner::{series_json, ExperimentSpec, Json};
use crate::scenario::Variant;

/// What a registry entry reproduces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A figure of the paper's §5 evaluation.
    Figure,
    /// A design-choice ablation (`DESIGN.md` §Ablations).
    Ablation,
    /// A robustness matrix (adversary strategies × defense variants).
    Matrix,
    /// A non-dumbbell topology experiment (trees, parking lots): scenario
    /// diversity beyond the paper's §5.1 shape.
    Topology,
    /// A performance macro-benchmark (simulator speed, not paper data).
    /// Its JSON includes wall-clock fields, so — unlike every other kind —
    /// the payload is not byte-stable across runs.
    Perf,
}

/// The outcome of running one registered experiment.
pub struct ExperimentOutput {
    /// The experiment's registry id.
    pub id: &'static str,
    /// The seed the run used (registered seed unless overridden).
    pub seed: u64,
    /// Canonical JSON payload (the `data` field of `BENCH_*.json`).
    pub data: Json,
}

/// A registered experiment: enumerable metadata plus a parameterized run.
pub trait Experiment: Send + Sync {
    /// Unique registry id, e.g. `fig08a_dl_throughput`.
    fn id(&self) -> &'static str;
    /// The paper figure this reproduces (empty for ablations).
    fn figure(&self) -> &'static str;
    /// One-line description for `figures --list`.
    fn describe(&self) -> &'static str;
    /// Figure or ablation.
    fn kind(&self) -> Kind;
    /// The registered (default) seed.
    fn seed(&self) -> u64;
    /// Run under `params`, honoring quick mode, seed overrides and the
    /// smoothing window.
    fn run(&self, params: &Params) -> ExperimentOutput;
}

/// A registry row: plain data plus a function pointer, so entries are
/// `Copy` and the table is a `static`.
#[derive(Clone, Copy)]
pub struct ExperimentDef {
    id: &'static str,
    figure: &'static str,
    describe: &'static str,
    kind: Kind,
    seed: u64,
    body: fn(&Params, u64) -> Json,
}

impl Experiment for ExperimentDef {
    fn id(&self) -> &'static str {
        self.id
    }
    fn figure(&self) -> &'static str {
        self.figure
    }
    fn describe(&self) -> &'static str {
        self.describe
    }
    fn kind(&self) -> Kind {
        self.kind
    }
    fn seed(&self) -> u64 {
        self.seed
    }
    fn run(&self, params: &Params) -> ExperimentOutput {
        let seed = params.seed_for(self.seed);
        ExperimentOutput {
            id: self.id,
            seed,
            data: (self.body)(params, seed),
        }
    }
}

// ---------------------------------------------------------------------------
// JSON encodings shared by the figure entries
// ---------------------------------------------------------------------------

fn sessions_rows_json(rows: &[experiments::SessionsRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("n", Json::U64(r.n as u64)),
                    ("avg_bps", Json::Num(r.avg_bps)),
                    (
                        "individual_bps",
                        Json::nums(r.individual_bps.iter().copied()),
                    ),
                ])
            })
            .collect(),
    )
}

fn overhead_rows_json(rows: &[experiments::OverheadRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("x", Json::Num(r.x)),
                    ("delta_analytic", Json::Num(r.delta_analytic)),
                    ("sigma_analytic", Json::Num(r.sigma_analytic)),
                    ("delta_measured", Json::Num(r.delta_measured)),
                    ("sigma_measured", Json::Num(r.sigma_measured)),
                ])
            })
            .collect(),
    )
}

fn attack_json(r: &experiments::AttackResult, attack_at: u64) -> Json {
    Json::obj([
        ("attack_at_secs", Json::U64(attack_at)),
        (
            "series",
            Json::Arr(r.series.iter().map(series_json).collect()),
        ),
        (
            "post_attack_avg_bps",
            Json::nums(r.post_attack_avg_bps.iter().copied()),
        ),
    ])
}

fn convergence_json(r: &experiments::ConvergenceResult) -> Json {
    Json::obj([
        (
            "throughput",
            Json::Arr(r.throughput.iter().map(series_json).collect()),
        ),
        (
            "levels",
            Json::Arr(r.levels.iter().map(series_json).collect()),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Figure bodies
// ---------------------------------------------------------------------------

fn attack_body(variant: Variant, p: &Params, seed: u64) -> Json {
    let dur = p.duration(200);
    let attack_at = dur / 2;
    attack_json(
        &experiments::attack_experiment(variant, dur, attack_at, seed, p),
        attack_at,
    )
}

fn sessions_body(variant: Variant, cross: bool, p: &Params, seed: u64) -> Json {
    sessions_rows_json(&experiments::throughput_vs_sessions(
        variant,
        &p.session_counts(),
        cross,
        p.duration(200),
        seed,
    ))
}

fn sessions_pair_body(cross: bool, p: &Params, seed: u64) -> Json {
    Json::obj([
        ("flid_dl", sessions_body(Variant::FlidDl, cross, p, seed)),
        ("flid_ds", sessions_body(Variant::FlidDs, cross, p, seed)),
    ])
}

fn responsiveness_body(p: &Params, seed: u64) -> Json {
    let dur = p.duration(100);
    let (from, to) = (dur * 45 / 100, dur * 75 / 100);
    Json::obj([
        (
            "burst_secs",
            Json::Arr(vec![Json::U64(from), Json::U64(to)]),
        ),
        (
            "series",
            Json::Arr(
                Variant::BOTH
                    .iter()
                    .map(|&v| series_json(&experiments::responsiveness(v, dur, from, to, seed, p)))
                    .collect(),
            ),
        ),
    ])
}

fn rtt_body(p: &Params, seed: u64) -> Json {
    let dur = p.duration(200);
    let pairs = |variant| {
        Json::Arr(
            experiments::rtt_experiment(variant, dur, seed)
                .into_iter()
                .map(|(rtt, bps)| Json::Arr(vec![Json::Num(rtt), Json::Num(bps)]))
                .collect(),
        )
    };
    Json::obj([
        ("flid_dl", pairs(Variant::FlidDl)),
        ("flid_ds", pairs(Variant::FlidDs)),
    ])
}

fn convergence_body(variant: Variant, p: &Params, seed: u64) -> Json {
    let dur = p.duration(40).max(40);
    convergence_json(&experiments::convergence(variant, dur, seed))
}

fn overhead_groups_body(p: &Params, seed: u64) -> Json {
    let ns: Vec<u32> = (1..=10).map(|i| 2 * i).collect();
    overhead_rows_json(&experiments::overhead_vs_groups(&ns, p.duration(60), seed))
}

fn overhead_slot_body(p: &Params, seed: u64) -> Json {
    let slots = [200u64, 300, 400, 500, 600, 700, 800, 900, 1000];
    overhead_rows_json(&experiments::overhead_vs_slot(&slots, p.duration(60), seed))
}

// ---------------------------------------------------------------------------
// Ablation bodies
// ---------------------------------------------------------------------------

fn ablation_sharing_body(_p: &Params, _seed: u64) -> Json {
    use mcc_delta::overhead::{delta_overhead, naive_delta_overhead, OverheadParams};
    Json::Arr(
        [2u32, 5, 10, 20]
            .iter()
            .map(|&n| {
                let p = OverheadParams::paper(n, 0.25);
                Json::obj([
                    ("n_groups", Json::U64(n as u64)),
                    ("shared", Json::Num(delta_overhead(&p))),
                    ("naive", Json::Num(naive_delta_overhead(&p))),
                ])
            })
            .collect(),
    )
}

fn ablation_fec_body(p: &Params, seed: u64) -> Json {
    let slots = if p.quick { 500 } else { 2000 };
    let rows = experiments::fec_ablation(&[1, 2, 3], &[0.1, 0.3, 0.5], slots, seed);
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("repeat", Json::U64(r.repeat as u64)),
                    ("loss", Json::Num(r.loss)),
                    ("slot_miss_rate", Json::Num(r.slot_miss_rate)),
                    ("expansion", Json::Num(r.expansion)),
                ])
            })
            .collect(),
    )
}

fn ablation_slot_body(p: &Params, seed: u64) -> Json {
    let slots: &[u64] = if p.quick {
        &[250, 1000]
    } else {
        &[125, 250, 500, 1000]
    };
    let rows = experiments::slot_ablation(slots, seed);
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("slot_ms", Json::U64(r.slot_ms)),
                    ("goodput_bps", Json::Num(r.goodput_bps)),
                    ("reaction_secs", Json::Num(r.reaction_secs)),
                    ("sigma_overhead", Json::Num(r.sigma_overhead)),
                ])
            })
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// Matrix bodies
// ---------------------------------------------------------------------------

fn matrix_robustness_body(p: &Params, seed: u64) -> Json {
    let dur = p.duration(60);
    let onset = dur / 3;
    let m = experiments::robustness_matrix(dur, onset, seed);
    Json::obj([
        ("onset_secs", Json::U64(m.onset_secs)),
        ("duration_secs", Json::U64(m.duration_secs)),
        ("fair_share_bps", Json::Num(m.fair_share_bps)),
        (
            "defenses",
            Json::Arr(
                m.defenses
                    .iter()
                    .map(|d| Json::Str(d.to_string()))
                    .collect(),
            ),
        ),
        (
            "strategies",
            Json::Arr(
                m.strategies
                    .iter()
                    .map(|s| Json::Str(s.to_string()))
                    .collect(),
            ),
        ),
        (
            "cells",
            Json::Arr(
                m.cells
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("defense", Json::Str(c.defense.to_string())),
                            ("strategy", Json::Str(c.strategy.to_string())),
                            ("attacker_bps", Json::Num(c.attacker_bps)),
                            ("honest_bps", Json::Num(c.honest_bps)),
                            ("tcp_bps", Json::Num(c.tcp_bps)),
                            ("baseline_honest_bps", Json::Num(c.baseline_honest_bps)),
                            ("honest_loss_pct", Json::Num(c.damage.honest_loss_pct)),
                            (
                                "attacker_excess_pct",
                                Json::Num(c.damage.attacker_excess_pct),
                            ),
                            (
                                "time_to_lockout_secs",
                                c.damage
                                    .time_to_lockout_secs
                                    .map(Json::Num)
                                    .unwrap_or(Json::Null),
                            ),
                            ("rejected_keys", Json::U64(c.rejected_keys)),
                            ("raw_igmp_blocked", Json::U64(c.raw_igmp_blocked)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn churn_robustness_body(p: &Params, seed: u64) -> Json {
    let dur = p.duration(60);
    let onset = dur / 3;
    // `--set churn_rate=R` pins the sweep to one point; `--set
    // flash_factor=F` rescales the flash crowd (which rides the top
    // point of a multi-point sweep only).
    let rates: Vec<f64> = match p.churn_rate {
        Some(r) => vec![r],
        None => experiments::CHURN_RATES.to_vec(),
    };
    let flash_factor = p.flash_factor.unwrap_or(experiments::CHURN_FLASH_FACTOR);
    let m = experiments::churn_robustness(dur, onset, seed, &rates, flash_factor);
    Json::obj([
        ("onset_secs", Json::U64(m.onset_secs)),
        ("duration_secs", Json::U64(m.duration_secs)),
        ("mean_dwell_secs", Json::U64(m.mean_dwell_secs)),
        ("flash_factor", Json::Num(m.flash_factor)),
        (
            "defenses",
            Json::Arr(
                m.defenses
                    .iter()
                    .map(|d| Json::Str(d.to_string()))
                    .collect(),
            ),
        ),
        (
            "churn_rates",
            Json::Arr(m.churn_rates.iter().map(|&r| Json::Num(r)).collect()),
        ),
        (
            "cells",
            Json::Arr(
                m.cells
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("defense", Json::Str(c.defense.to_string())),
                            ("churn_rate", Json::Num(c.churn_rate)),
                            ("flash", Json::Bool(c.flash)),
                            ("churn_receivers", Json::U64(c.churn_receivers)),
                            ("attacker_bps", Json::Num(c.attacker_bps)),
                            ("honest_bps", Json::Num(c.honest_bps)),
                            ("baseline_honest_bps", Json::Num(c.baseline_honest_bps)),
                            ("honest_loss_pct", Json::Num(c.damage.honest_loss_pct)),
                            (
                                "attacker_excess_pct",
                                Json::Num(c.damage.attacker_excess_pct),
                            ),
                            (
                                "time_to_lockout_secs",
                                c.damage
                                    .time_to_lockout_secs
                                    .map(Json::Num)
                                    .unwrap_or(Json::Null),
                            ),
                            ("rejected_keys", Json::U64(c.rejected_keys)),
                            ("guard_false_positives", Json::U64(c.guard_false_positives)),
                            ("tuples_installed", Json::U64(c.tuples_installed)),
                            ("session_joins", Json::U64(c.session_joins)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Topology bodies
// ---------------------------------------------------------------------------

fn tree_placement_body(p: &Params, seed: u64) -> Json {
    let (depth, fanout) = if p.quick { (2, 2) } else { (3, 2) };
    let dur = p.duration(60);
    let onset = dur / 3;
    let r = experiments::tree_placement(depth, fanout, dur, onset, seed);
    Json::obj([
        ("depth", Json::U64(r.depth as u64)),
        ("fanout", Json::U64(r.fanout as u64)),
        ("onset_secs", Json::U64(r.onset_secs)),
        ("duration_secs", Json::U64(r.duration_secs)),
        (
            "rows",
            Json::Arr(
                r.rows
                    .iter()
                    .map(|row| {
                        Json::obj([
                            ("defense", Json::Str(row.defense.to_string())),
                            ("attacker_depth", Json::U64(row.attacker_depth as u64)),
                            ("attacker_bps", Json::Num(row.attacker_bps)),
                            (
                                "attacker_baseline_bps",
                                Json::Num(row.attacker_baseline_bps),
                            ),
                            ("honest_mean_bps", Json::Num(row.honest_mean_bps)),
                            ("baseline_mean_bps", Json::Num(row.baseline_mean_bps)),
                            ("honest_loss_pct", Json::Num(row.honest_loss_pct)),
                            ("subtree_loss_pct", Json::Num(row.subtree_loss_pct)),
                            ("outside_loss_pct", Json::Num(row.outside_loss_pct)),
                            ("rejected_keys", Json::U64(row.rejected_keys)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn parking_lot_body(p: &Params, seed: u64) -> Json {
    let bottlenecks = if p.quick { 2 } else { 3 };
    let dur = p.duration(60);
    let onset = dur / 3;
    let r = experiments::parking_lot_fairness(bottlenecks, 100_000, dur, onset, seed);
    Json::obj([
        ("bottlenecks", Json::U64(r.bottlenecks as u64)),
        ("per_hop_cbr_bps", Json::U64(r.per_hop_cbr_bps)),
        ("onset_secs", Json::U64(r.onset_secs)),
        ("duration_secs", Json::U64(r.duration_secs)),
        (
            "variants",
            Json::Arr(
                r.variants
                    .iter()
                    .map(|v| {
                        Json::obj([
                            ("variant", Json::Str(v.variant.to_string())),
                            ("attacker_bps", Json::Num(v.attacker_bps)),
                            ("attacker_baseline_bps", Json::Num(v.attacker_baseline_bps)),
                            (
                                "hops",
                                Json::Arr(
                                    v.hops
                                        .iter()
                                        .map(|h| {
                                            Json::obj([
                                                ("hop", Json::U64(h.hop as u64)),
                                                ("honest_bps", Json::Num(h.honest_bps)),
                                                ("baseline_bps", Json::Num(h.baseline_bps)),
                                                ("honest_loss_pct", Json::Num(h.honest_loss_pct)),
                                                ("cbr_bps", Json::Num(h.cbr_bps)),
                                                ("cbr_baseline_bps", Json::Num(h.cbr_baseline_bps)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Perf bodies
// ---------------------------------------------------------------------------

/// Canonical JSON of one [`experiments::PerfRow`] — shared by the
/// registry body below and the `perf_events` binary in `mcc-bench`, so
/// the two reports cannot drift apart.
pub fn perf_row_json(r: &experiments::PerfRow) -> Json {
    Json::obj([
        ("receivers", Json::U64(r.receivers as u64)),
        ("sim_secs", Json::U64(r.sim_secs)),
        ("events", Json::U64(r.events)),
        ("peak_queue_depth", Json::U64(r.peak_queue_depth as u64)),
        ("wall_secs", Json::Num(r.wall_secs)),
        ("events_per_sec", Json::Num(r.events_per_sec)),
    ])
}

/// Canonical JSON of a sharded [`experiments::PerfRow`]: the row fields
/// plus the shard layout — worker threads, and executed events per shard
/// (index 0 = root shard), whose length is the shard count the
/// partitioner picked.
pub fn sharded_row_json(r: &experiments::PerfRow, per_shard: &[u64], workers: usize) -> Json {
    Json::obj([
        ("shards", Json::U64(per_shard.len() as u64)),
        ("workers", Json::U64(workers as u64)),
        ("events", Json::U64(r.events)),
        (
            "per_shard_events",
            Json::Arr(per_shard.iter().map(|&e| Json::U64(e)).collect()),
        ),
        ("peak_queue_depth", Json::U64(r.peak_queue_depth as u64)),
        ("wall_secs", Json::Num(r.wall_secs)),
        ("events_per_sec", Json::Num(r.events_per_sec)),
    ])
}

/// Canonical JSON of one [`experiments::ScaleRow`] — shared by the
/// registry body below and the `scale_sweep` binary in `mcc-bench`.
pub fn scale_row_json(r: &experiments::ScaleRow) -> Json {
    Json::obj([
        ("receivers", Json::U64(r.receivers)),
        ("hosts", Json::U64(r.hosts)),
        ("sim_secs", Json::U64(r.sim_secs)),
        ("events", Json::U64(r.events)),
        ("wall_secs", Json::Num(r.wall_secs)),
        ("events_per_sec", Json::Num(r.events_per_sec)),
        ("peak_rss_bytes", Json::U64(r.peak_rss_bytes)),
        ("rss_delta_bytes", Json::U64(r.rss_delta_bytes)),
        ("bytes_per_receiver", Json::Num(r.bytes_per_receiver)),
        ("grant_ifaces", Json::U64(r.grant_ifaces)),
        ("grant_tables", Json::U64(r.grant_tables)),
        ("mean_receiver_bps", Json::Num(r.mean_receiver_bps)),
    ])
}

/// Run one sweep point and enforce its memory ceiling. RSS deltas are
/// only meaningful when procfs is available and the point actually
/// raised the process peak; a zero reading is "unmeasured", not "free".
pub fn scale_point_checked(n: u64, secs: u64, seed: u64) -> experiments::ScaleRow {
    let row = experiments::scale_point(n, secs, seed);
    let ceiling = experiments::scale_ceiling_bytes_per_receiver(n);
    if row.peak_rss_bytes > 0 {
        assert!(
            row.bytes_per_receiver <= ceiling,
            "scale_sweep: {} receivers cost {:.1} bytes/receiver (ceiling {:.0})",
            n,
            row.bytes_per_receiver,
            ceiling
        );
    }
    row
}

fn scale_sweep_body(p: &Params, seed: u64) -> Json {
    let points = if p.quick {
        experiments::SCALE_QUICK
    } else {
        experiments::SCALE_FULL
    };
    Json::obj([
        ("hosts", Json::U64(experiments::SCALE_HOSTS)),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|&n| {
                        scale_row_json(&scale_point_checked(n, experiments::SCALE_SECS, seed))
                    })
                    .collect(),
            ),
        ),
    ])
}

fn perf_events_body(p: &Params, seed: u64) -> Json {
    let (receivers, secs) = if p.quick {
        experiments::PERF_QUICK
    } else {
        experiments::PERF_FULL
    };
    let serial = experiments::perf_events(receivers, secs, seed);
    let workers = crate::config::shard_workers().max(2);
    let (sharded, per_shard) = experiments::perf_events_sharded(receivers, secs, seed, workers);
    assert_eq!(
        serial.events, sharded.events,
        "sharded run diverged from serial ({} vs {} events)",
        sharded.events, serial.events
    );
    Json::obj([
        ("serial", perf_row_json(&serial)),
        ("sharded", sharded_row_json(&sharded, &per_shard, workers)),
    ])
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// Every registered experiment: the twelve §5 figures in suite order,
/// then the three ablations.
pub static REGISTRY: &[ExperimentDef] = &[
    ExperimentDef {
        id: "fig01_attack",
        figure: "Figure 1",
        describe: "impact of inflated subscription (FLID-DL)",
        kind: Kind::Figure,
        seed: 1,
        body: |p, s| attack_body(Variant::FlidDl, p, s),
    },
    ExperimentDef {
        id: "fig07_protection",
        figure: "Figure 7",
        describe: "protection with DELTA and SIGMA (FLID-DS)",
        kind: Kind::Figure,
        seed: 1,
        body: |p, s| attack_body(Variant::FlidDs, p, s),
    },
    ExperimentDef {
        id: "fig08a_dl_throughput",
        figure: "Figure 8a",
        describe: "FLID-DL throughput vs sessions, no cross traffic",
        kind: Kind::Figure,
        seed: 8,
        body: |p, s| sessions_body(Variant::FlidDl, false, p, s),
    },
    ExperimentDef {
        id: "fig08b_ds_throughput",
        figure: "Figure 8b",
        describe: "FLID-DS throughput vs sessions, no cross traffic",
        kind: Kind::Figure,
        seed: 8,
        body: |p, s| sessions_body(Variant::FlidDs, false, p, s),
    },
    ExperimentDef {
        id: "fig08c_avg_no_cross",
        figure: "Figure 8c",
        describe: "average throughput, DL vs DS, no cross traffic",
        kind: Kind::Figure,
        seed: 8,
        body: |p, s| sessions_pair_body(false, p, s),
    },
    ExperimentDef {
        id: "fig08d_avg_cross",
        figure: "Figure 8d",
        describe: "average throughput with TCP + on-off CBR cross traffic",
        kind: Kind::Figure,
        seed: 8,
        body: |p, s| sessions_pair_body(true, p, s),
    },
    ExperimentDef {
        id: "fig08e_responsiveness",
        figure: "Figure 8e",
        describe: "responsiveness to an 800 Kbps CBR burst",
        kind: Kind::Figure,
        seed: 3,
        body: responsiveness_body,
    },
    ExperimentDef {
        id: "fig08f_rtt",
        figure: "Figure 8f",
        describe: "throughput under heterogeneous round-trip times",
        kind: Kind::Figure,
        seed: 13,
        body: rtt_body,
    },
    ExperimentDef {
        id: "fig08g_convergence_dl",
        figure: "Figure 8g",
        describe: "subscription convergence of staggered joiners (FLID-DL)",
        kind: Kind::Figure,
        seed: 11,
        body: |p, s| convergence_body(Variant::FlidDl, p, s),
    },
    ExperimentDef {
        id: "fig08h_convergence_ds",
        figure: "Figure 8h",
        describe: "subscription convergence of staggered joiners (FLID-DS)",
        kind: Kind::Figure,
        seed: 11,
        body: |p, s| convergence_body(Variant::FlidDs, p, s),
    },
    ExperimentDef {
        id: "fig09a_overhead_groups",
        figure: "Figure 9a",
        describe: "DELTA/SIGMA overhead vs group count",
        kind: Kind::Figure,
        seed: 5,
        body: overhead_groups_body,
    },
    ExperimentDef {
        id: "fig09b_overhead_slot",
        figure: "Figure 9b",
        describe: "DELTA/SIGMA overhead vs slot duration",
        kind: Kind::Figure,
        seed: 5,
        body: overhead_slot_body,
    },
    ExperimentDef {
        id: "ablation_sharing",
        figure: "",
        describe: "component sharing vs naive per-key layout (§3.1.1)",
        kind: Kind::Ablation,
        seed: 0,
        body: ablation_sharing_body,
    },
    ExperimentDef {
        id: "ablation_fec",
        figure: "",
        describe: "FEC repetition factor vs router slot-miss rate",
        kind: Kind::Ablation,
        seed: 9,
        body: ablation_fec_body,
    },
    ExperimentDef {
        id: "ablation_slot",
        figure: "",
        describe: "slot duration: responsiveness vs SIGMA overhead",
        kind: Kind::Ablation,
        seed: 4,
        body: ablation_slot_body,
    },
    ExperimentDef {
        id: "matrix_robustness",
        figure: "",
        describe: "adversary strategies x defense variants: damage + containment",
        kind: Kind::Matrix,
        seed: 17,
        body: matrix_robustness_body,
    },
    ExperimentDef {
        id: "churn_robustness",
        figure: "",
        describe: "defense variants under membership churn and flash crowds",
        kind: Kind::Matrix,
        seed: 29,
        body: churn_robustness_body,
    },
    ExperimentDef {
        id: "tree_placement",
        figure: "",
        describe: "honest damage vs attacker depth on a balanced multicast tree",
        kind: Kind::Topology,
        seed: 21,
        body: tree_placement_body,
    },
    ExperimentDef {
        id: "parking_lot_fairness",
        figure: "",
        describe: "per-hop goodput shares on chained bottlenecks under InflateTo",
        kind: Kind::Topology,
        seed: 23,
        body: parking_lot_body,
    },
    ExperimentDef {
        id: "perf_events",
        figure: "",
        describe: "macro-benchmark: events/sec on a wide-dumbbell FLID fan-out",
        kind: Kind::Perf,
        seed: experiments::PERF_SEED,
        body: perf_events_body,
    },
    ExperimentDef {
        id: "scale_sweep",
        figure: "",
        describe:
            "macro-benchmark: cohort receivers 10^3..10^6 — events/sec, peak RSS, bytes/receiver",
        kind: Kind::Perf,
        seed: experiments::SCALE_SEED,
        body: scale_sweep_body,
    },
];

/// All registered experiments as trait objects.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    REGISTRY
        .iter()
        .map(|d| Box::new(*d) as Box<dyn Experiment>)
        .collect()
}

/// The figure entries, in suite order.
pub fn figures() -> Vec<ExperimentDef> {
    REGISTRY
        .iter()
        .filter(|d| d.kind == Kind::Figure)
        .copied()
        .collect()
}

/// The ablation entries.
pub fn ablations() -> Vec<ExperimentDef> {
    REGISTRY
        .iter()
        .filter(|d| d.kind == Kind::Ablation)
        .copied()
        .collect()
}

/// The robustness-matrix entries.
pub fn matrices() -> Vec<ExperimentDef> {
    REGISTRY
        .iter()
        .filter(|d| d.kind == Kind::Matrix)
        .copied()
        .collect()
}

/// The non-dumbbell topology entries.
pub fn topologies() -> Vec<ExperimentDef> {
    REGISTRY
        .iter()
        .filter(|d| d.kind == Kind::Topology)
        .copied()
        .collect()
}

/// The performance macro-benchmark entries.
pub fn perfs() -> Vec<ExperimentDef> {
    REGISTRY
        .iter()
        .filter(|d| d.kind == Kind::Perf)
        .copied()
        .collect()
}

/// Look an experiment up by exact id.
pub fn find(id: &str) -> Option<ExperimentDef> {
    REGISTRY.iter().find(|d| d.id == id).copied()
}

/// Registry entries matching a CLI selector: an exact id
/// (`fig08a_dl_throughput`) or a figure-style prefix (`fig08a`, matching
/// `<prefix>_…`).
pub fn matching(selector: &str) -> Vec<ExperimentDef> {
    REGISTRY
        .iter()
        .filter(|d| {
            d.id == selector
                || (d.id.starts_with(selector) && d.id[selector.len()..].starts_with('_'))
        })
        .copied()
        .collect()
}

/// Runner specs for a set of entries under `params`: the bridge between
/// the registry and `runner::{run_serial, run_parallel}`. Spec names are
/// registry ids (optionally suffixed by the caller for sweeps), seeds are
/// the effective `params` seeds, and bodies run the registered
/// experiment — so registry runs serialize exactly like the historical
/// hand-built suite.
pub fn specs(defs: &[ExperimentDef], params: &Params) -> Vec<ExperimentSpec> {
    defs.iter()
        .map(|d| {
            let def = *d;
            let p = params.clone();
            ExperimentSpec::new(def.id, params.seed_for(def.seed), move |seed| {
                (def.body)(&p, seed)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_enumerates_figures_ablations_and_matrices() {
        assert!(
            REGISTRY.len() >= 21,
            "12 figures + 3 ablations + 2 matrices + 2 topologies + 2 perf"
        );
        assert_eq!(figures().len(), 12);
        assert_eq!(ablations().len(), 3);
        assert_eq!(matrices().len(), 2);
        assert_eq!(topologies().len(), 2);
        assert_eq!(perfs().len(), 2);
        let mut ids: Vec<&str> = REGISTRY.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), REGISTRY.len(), "ids must be unique");
    }

    #[test]
    fn matrix_entry_is_selectable_but_not_a_default_figure() {
        let def = find("matrix_robustness").expect("registered");
        assert_eq!(def.kind(), Kind::Matrix);
        assert!(figures().iter().all(|d| d.id() != "matrix_robustness"));
        assert_eq!(matching("matrix").len(), 1, "prefix selector works");
    }

    #[test]
    fn topology_entries_are_selectable_but_not_default_figures() {
        for id in ["tree_placement", "parking_lot_fairness"] {
            let def = find(id).expect("registered");
            assert_eq!(def.kind(), Kind::Topology);
            assert!(figures().iter().all(|d| d.id() != id));
        }
        assert_eq!(matching("tree").len(), 1, "prefix selector works");
        assert_eq!(matching("parking_lot").len(), 1);
    }

    #[test]
    fn perf_entry_is_selectable_but_not_a_default_figure() {
        let def = find("perf_events").expect("registered");
        assert_eq!(def.kind(), Kind::Perf);
        assert_eq!(def.seed(), experiments::PERF_SEED);
        assert!(figures().iter().all(|d| d.id() != "perf_events"));
        assert_eq!(matching("perf").len(), 1, "prefix selector works");
    }

    #[test]
    fn scale_entry_is_selectable_but_not_a_default_figure() {
        let def = find("scale_sweep").expect("registered");
        assert_eq!(def.kind(), Kind::Perf);
        assert_eq!(def.seed(), experiments::SCALE_SEED);
        assert!(figures().iter().all(|d| d.id() != "scale_sweep"));
        assert_eq!(matching("scale").len(), 1, "prefix selector works");
    }

    #[test]
    fn selectors_match_exact_ids_and_figure_prefixes() {
        assert_eq!(matching("fig01").len(), 1);
        assert_eq!(matching("fig01")[0].id, "fig01_attack");
        assert_eq!(matching("fig08a_dl_throughput").len(), 1);
        assert_eq!(matching("fig08a")[0].id, "fig08a_dl_throughput");
        assert!(matching("fig08").is_empty(), "no underscore boundary");
        assert!(matching("nope").is_empty());
    }

    #[test]
    fn seed_override_flows_into_outputs() {
        let def = find("ablation_sharing").expect("registered");
        let out = def.run(&Params::default());
        assert_eq!(out.seed, 0);
        let p = Params::default().with_override("seed", "77").unwrap();
        assert_eq!(def.run(&p).seed, 77);
    }

    /// The analytic ablation is cheap enough to run in tests and pins the
    /// §3.1.1 claim: sharing beats the naive layout at every group count.
    #[test]
    fn sharing_ablation_reports_the_telescope_win() {
        let out = find("ablation_sharing").unwrap().run(&Params::default());
        let Json::Arr(rows) = out.data else {
            panic!("array payload")
        };
        assert_eq!(rows.len(), 4);
        for row in rows {
            let Json::Obj(fields) = row else {
                panic!("object rows")
            };
            let get = |k: &str| -> f64 {
                match fields.iter().find(|(key, _)| key == k) {
                    Some((_, Json::Num(x))) => *x,
                    other => panic!("missing {k}: {other:?}"),
                }
            };
            assert!(get("naive") > get("shared"), "sharing must win");
        }
    }
}
