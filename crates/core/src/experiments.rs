//! One entry point per figure of the paper's evaluation (§5).
//!
//! Every function is deterministic in its `seed` and parameterized by
//! duration so the same code drives both the full regeneration (the
//! `mcc-bench` binaries) and fast integration tests. The experiment
//! index in `DESIGN.md` maps each function to its figure; `EXPERIMENTS.md`
//! records paper-versus-measured shapes.

use crate::config::Params;
use crate::dumbbell::{CbrSpec, Dumbbell, McastSessionSpec, ReceiverSpec, SessionHandle};
use crate::metrics::{damage, Damage, Series};
use crate::scenario::{Scenario, Units, Variant};
use crate::topology::{BuiltTopology, Topology, TopologySpec};
use mcc_attack::{
    All, AttackPlan, Colluders, CollusionSet, IgnoreDecrease, InflateTo, JoinLeaveFlap, KeyGuess,
    Placement, Timed,
};
use mcc_delta::overhead::{delta_overhead, sigma_overhead, OverheadParams};
use mcc_flid::{Behavior, FlidConfig};
use mcc_netsim::{FlowId, GroupAddr};
use mcc_simcore::{SimDuration, SimTime};

/// Result of the attack experiments (Figures 1 and 7): throughput-vs-time
/// of the misbehaving receiver F1, the honest receiver F2 and the TCP
/// receivers T1/T2.
#[derive(Clone, Debug)]
pub struct AttackResult {
    /// `F1, F2, T1, T2` series (bit/s, smoothed like the paper's plots).
    pub series: Vec<Series>,
    /// Average throughput of each flow after the attack begins.
    pub post_attack_avg_bps: Vec<f64>,
}

/// Figures 1 & 7: two multicast + two TCP sessions on a 1 Mbps bottleneck;
/// F1 inflates its subscription at `attack_at_secs`.
pub fn attack_experiment(
    variant: Variant,
    duration_secs: u64,
    attack_at_secs: u64,
    seed: u64,
    params: &Params,
) -> AttackResult {
    let mut d = Scenario::dumbbell(1.mbps())
        .seed(seed)
        .sessions(1, variant)
        .attacker_at(attack_at_secs.secs())
        .tcp(2)
        .build();
    d.run_secs(duration_secs);

    let agents = [
        ("F1", d.sessions[0].receivers[0]),
        ("F2", d.sessions[1].receivers[0]),
        ("T1", d.tcp[0].sink),
        ("T2", d.tcp[1].sink),
    ];
    let series: Vec<Series> = agents
        .iter()
        .map(|(label, a)| {
            Series::from_values(label, 0.0, 1.0, &d.series_bps(*a, duration_secs))
                .smoothed(params.smoothing)
        })
        .collect();
    let post_attack_avg_bps = agents
        .iter()
        .map(|(_, a)| d.throughput_bps(*a, attack_at_secs + 5, duration_secs))
        .collect();
    AttackResult {
        series,
        post_attack_avg_bps,
    }
}

/// One row of the Figure 8a–8d sweeps.
#[derive(Clone, Debug)]
pub struct SessionsRow {
    /// Number of multicast sessions.
    pub n: u32,
    /// Per-receiver average throughput, bit/s.
    pub individual_bps: Vec<f64>,
    /// Mean of the individual rates.
    pub avg_bps: f64,
}

/// Figures 8a/8b (and the multicast half of 8d): `n` multicast sessions,
/// optional equal TCP population plus an on-off CBR at 10 % of capacity.
pub fn throughput_vs_sessions(
    variant: Variant,
    ns: &[u32],
    cross_traffic: bool,
    duration_secs: u64,
    seed: u64,
) -> Vec<SessionsRow> {
    ns.iter()
        .map(|&n| {
            let total_sessions = if cross_traffic { 2 * n } else { n };
            let capacity = 250.kbps() * total_sessions as u64;
            let mut sc = Scenario::dumbbell(capacity)
                .seed(seed ^ (n as u64) << 32)
                .sessions(n, variant);
            if cross_traffic {
                sc = sc
                    .tcp(n as usize)
                    .cbr(CbrSpec::steady(capacity / 10).on_off(5.secs_dur(), 5.secs_dur()));
            }
            let mut d = sc.build();
            d.run_secs(duration_secs);
            let individual_bps: Vec<f64> = d
                .sessions
                .iter()
                .map(|s| d.throughput_bps(s.receivers[0], 0, duration_secs))
                .collect();
            let avg_bps = individual_bps.iter().sum::<f64>() / individual_bps.len() as f64;
            SessionsRow {
                n,
                individual_bps,
                avg_bps,
            }
        })
        .collect()
}

/// Figure 8e: responsiveness to an 800 Kbps CBR burst during
/// `[burst_from, burst_to]` seconds on a 1 Mbps bottleneck.
pub fn responsiveness(
    variant: Variant,
    duration_secs: u64,
    burst_from: u64,
    burst_to: u64,
    seed: u64,
    params: &Params,
) -> Series {
    let mut d = Scenario::dumbbell(1.mbps())
        .seed(seed)
        .sessions(1, variant)
        .cbr(CbrSpec::steady(800.kbps()).window(burst_from.secs(), burst_to.secs()))
        .build();
    d.run_secs(duration_secs);
    Series::from_values(
        variant.label(),
        0.0,
        1.0,
        &d.series_bps(d.sessions[0].receivers[0], duration_secs),
    )
    .smoothed(params.smoothing)
}

/// Figure 8f: one session, 20 receivers, round-trip times spread uniformly
/// over 30–220 ms. Returns `(rtt_ms, avg_bps)` per receiver.
pub fn rtt_experiment(variant: Variant, duration_secs: u64, seed: u64) -> Vec<(f64, f64)> {
    let n_receivers = 20;
    let receivers = (0..n_receivers).map(|i| {
        let rtt_ms = 30.0 + 10.0 * i as f64;
        // One-way path = 10 (sender side) + 5 (bottleneck) + access.
        let access_ms = (rtt_ms / 2.0 - 15.0).max(0.1);
        ReceiverSpec::new().access_delay(SimDuration::from_secs_f64(access_ms / 1000.0))
    });
    let mut d = Scenario::dumbbell(250.kbps())
        .seed(seed)
        .bottleneck_delay(5.ms())
        .session(McastSessionSpec::new(variant).with_receivers(receivers))
        .build();
    d.run_secs(duration_secs);
    (0..n_receivers)
        .map(|i| {
            let rtt_ms = 30.0 + 10.0 * i as f64;
            let avg = d.throughput_bps(d.sessions[0].receivers[i], 10, duration_secs);
            (rtt_ms, avg)
        })
        .collect()
}

/// Result of the convergence experiments (Figures 8g/8h).
#[derive(Clone, Debug)]
pub struct ConvergenceResult {
    /// Per-receiver throughput series.
    pub throughput: Vec<Series>,
    /// Per-receiver `(t, level)` traces.
    pub levels: Vec<Series>,
}

/// Figures 8g/8h: four receivers of one session joining at 0/10/20/30 s
/// behind a 250 Kbps bottleneck converge to the same subscription.
pub fn convergence(variant: Variant, duration_secs: u64, seed: u64) -> ConvergenceResult {
    let receivers = (0..4).map(|i| ReceiverSpec::new().join_at((10 * i).secs()));
    let mut d = Scenario::dumbbell(250.kbps())
        .seed(seed)
        .session(McastSessionSpec::new(variant).with_receivers(receivers))
        .build();
    d.run_secs(duration_secs);
    let throughput = (0..4)
        .map(|i| {
            Series::from_values(
                &format!("Receiver {}", i + 1),
                0.0,
                1.0,
                &d.series_bps(d.sessions[0].receivers[i], duration_secs),
            )
            .smoothed(Params::CONVERGENCE_SMOOTHING)
        })
        .collect();
    let levels = (0..4)
        .map(|i| {
            let r = d.receiver(d.sessions[0].receivers[i]);
            Series {
                label: format!("Receiver {}", i + 1),
                points: r.level_trace.iter().map(|&(t, l)| (t, l as f64)).collect(),
            }
        })
        .collect();
    ConvergenceResult { throughput, levels }
}

/// One row of the Figure 9 overhead sweeps.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Swept variable: group count (9a) or slot seconds (9b).
    pub x: f64,
    /// DELTA overhead, closed form (paper §5.4).
    pub delta_analytic: f64,
    /// SIGMA overhead, closed form with measured `f_g`, `z`, `h`.
    pub sigma_analytic: f64,
    /// DELTA overhead measured from sender counters.
    pub delta_measured: f64,
    /// SIGMA overhead measured from sender counters.
    pub sigma_measured: f64,
}

/// The paper's Figure-9 session: `R = 4 Mbps`, `r = 100 Kbps`, 500-byte
/// data packets, 16-bit keys. Returns the session config for `n` groups
/// and slot `t`.
fn fig9_config(n: u32, slot: SimDuration) -> FlidConfig {
    let r: f64 = 100_000.0;
    let big_r = 4_000_000.0;
    let m = (big_r / r).powf(1.0 / (n as f64 - 1.0));
    FlidConfig {
        groups: (1..=n).map(|g| GroupAddr(1000 + g)).collect(),
        control_group: GroupAddr(1000),
        flow: FlowId(0),
        base_rate_bps: r,
        rate_factor: m,
        slot,
        packet_bits: 4000,
        protected: true,
        fec_repeat: 2,
        upgrade_p0: 0.6,
        upgrade_decay: 0.75,
        ecn: false,
    }
}

/// Run a sender-only session and report measured + analytic overhead.
fn overhead_point(cfg: FlidConfig, duration_secs: u64, seed: u64) -> OverheadRow {
    use mcc_flid::FlidSender;
    use mcc_netsim::prelude::*;

    // Sender-only world: overhead counters are sender-side, and the
    // formulas normalize by transmitted data bits, so no receivers are
    // needed (unsubscribed groups die at the source, but they were sent).
    let mut sim = Sim::new(seed, SimDuration::from_secs(1));
    let h = sim.add_node();
    let sink_node = sim.add_node();
    sim.add_duplex_link(
        h,
        sink_node,
        100_000_000,
        SimDuration::from_millis(1),
        Queue::drop_tail(10_000_000),
        Queue::drop_tail(10_000_000),
    );
    let n = cfg.n();
    let slot_secs = cfg.slot.as_secs_f64();
    let sender = sim.add_agent(h, Box::new(FlidSender::new(cfg)), SimTime::ZERO);
    sim.finalize();
    sim.run_until(SimTime::from_secs(duration_secs));
    let o = &sim.agent_as::<FlidSender>(sender).unwrap().overhead;

    let params = OverheadParams {
        n_groups: n,
        data_bits_per_packet: 4000,
        key_bits: 16,
        slot_number_bits: 8,
        base_rate_bps: 100_000.0,
        session_rate_bps: 4_000_000.0,
        slot_secs,
    };
    OverheadRow {
        x: 0.0, // filled by the caller
        delta_analytic: delta_overhead(&params),
        sigma_analytic: sigma_overhead(
            &params,
            o.sum_fg(),
            o.fec_expansion(),
            o.header_bits_per_slot(),
        ),
        delta_measured: o.delta_ratio(),
        sigma_measured: o.sigma_ratio(),
    }
}

/// Figure 9a: overhead versus group count at `t = 250 ms`.
pub fn overhead_vs_groups(ns: &[u32], duration_secs: u64, seed: u64) -> Vec<OverheadRow> {
    ns.iter()
        .map(|&n| {
            let cfg = fig9_config(n, SimDuration::from_millis(250));
            let mut row = overhead_point(cfg, duration_secs, seed ^ n as u64);
            row.x = n as f64;
            row
        })
        .collect()
}

/// Figure 9b: overhead versus slot duration at `N = 10`.
pub fn overhead_vs_slot(slots_ms: &[u64], duration_secs: u64, seed: u64) -> Vec<OverheadRow> {
    slots_ms
        .iter()
        .map(|&ms| {
            let cfg = fig9_config(10, SimDuration::from_millis(ms));
            let mut row = overhead_point(cfg, duration_secs, seed ^ ms);
            row.x = ms as f64 / 1000.0;
            row
        })
        .collect()
}

/// Convenience: the session handle of session `i`.
pub fn session(d: &Dumbbell, i: usize) -> &SessionHandle {
    &d.sessions[i]
}

// ---------------------------------------------------------------------------
// The robustness matrix: adversary strategies × defense variants
// ---------------------------------------------------------------------------

/// The adversary strategies the `matrix_robustness` experiment sweeps, in
/// matrix row order.
pub const MATRIX_STRATEGIES: &[&str] = &[
    "inflate",
    "ignore_decrease",
    "key_guess",
    "colluders",
    "join_leave_flap",
];

/// One cell of the robustness matrix: one adversary strategy attacking
/// one defense variant.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Defense label ([`Variant::label`]).
    pub defense: &'static str,
    /// Strategy name (one of [`MATRIX_STRATEGIES`]).
    pub strategy: &'static str,
    /// Attacker goodput over the post-onset window, bit/s.
    pub attacker_bps: f64,
    /// Honest receiver goodput under attack, bit/s.
    pub honest_bps: f64,
    /// Mean TCP cross-traffic goodput under attack, bit/s.
    pub tcp_bps: f64,
    /// Honest receiver goodput in the attack-free baseline run, bit/s.
    pub baseline_honest_bps: f64,
    /// Damage/containment metrics relative to the baseline.
    pub damage: Damage,
    /// Keys the edge router rejected (0 when unprotected).
    pub rejected_keys: u64,
    /// Raw IGMP joins the edge router ignored (0 when unprotected).
    pub raw_igmp_blocked: u64,
}

/// The full matrix.
#[derive(Clone, Debug)]
pub struct MatrixResult {
    /// Attack onset, seconds.
    pub onset_secs: u64,
    /// Run duration, seconds.
    pub duration_secs: u64,
    /// Fair share of each of the four competing flows, bit/s.
    pub fair_share_bps: f64,
    /// Defense column labels, in cell order.
    pub defenses: Vec<&'static str>,
    /// Strategy row labels, in cell order.
    pub strategies: Vec<&'static str>,
    /// Cells, defense-major then strategy.
    pub cells: Vec<MatrixCell>,
}

/// Plans for one strategy cell: the attacker's plan and join time plus,
/// for collusion, a second (feeder) receiver's plan. Built fresh per
/// cell so shared state (the collusion pool) never leaks across
/// simulations.
struct CellPlans {
    attacker: AttackPlan,
    /// When the attacker joins; the colluding freeloader joins at the
    /// onset so everything it reaches beyond the minimal level early on
    /// is smuggled, not earned.
    attacker_join_at: SimTime,
    extra: Option<AttackPlan>,
}

fn strategy_cell_plans(name: &str, onset: SimTime) -> CellPlans {
    let at_start = |attacker| CellPlans {
        attacker,
        attacker_join_at: SimTime::ZERO,
        extra: None,
    };
    match name {
        "inflate" => at_start(AttackPlan::new(Timed::boxed(
            onset,
            Box::new(All::of(vec![
                Box::new(InflateTo::all()),
                Box::new(KeyGuess { rate: 10 }),
            ])),
        ))),
        "ignore_decrease" => at_start(AttackPlan::new(Timed::at(onset, IgnoreDecrease))),
        "key_guess" => at_start(AttackPlan::new(Timed::at(onset, KeyGuess { rate: 10 }))),
        "colluders" => {
            let set = CollusionSet::new();
            CellPlans {
                attacker: AttackPlan::new(Colluders::new(set.clone())),
                attacker_join_at: onset,
                extra: Some(AttackPlan::new(Colluders::new(set))),
            }
        }
        "join_leave_flap" => at_start(AttackPlan::new(Timed::at(
            onset,
            JoinLeaveFlap::new(5.secs_dur()),
        ))),
        other => panic!("unknown matrix strategy {other:?}"),
    }
}

/// Raw measurements of one matrix run.
#[derive(Clone)]
struct CellRun {
    attacker_bps: f64,
    honest_bps: f64,
    tcp_bps: f64,
    rejected_keys: u64,
    raw_igmp_blocked: u64,
    detection_secs: Option<f64>,
}

/// One matrix run: two sessions of `variant` (session 0 holds the
/// attacker, session 1 an honest receiver) plus two TCP flows on a 1 Mbps
/// bottleneck — the Figure-1/7 population, generalized over variants.
fn matrix_run(
    variant: Variant,
    attacker: AttackPlan,
    attacker_join_at: SimTime,
    extra: Option<AttackPlan>,
    duration_secs: u64,
    onset_secs: u64,
    seed: u64,
) -> CellRun {
    let n_groups = variant_groups(variant);
    let mut attack_session = McastSessionSpec::new(variant).groups(n_groups).receiver(
        ReceiverSpec::new()
            .adversary(attacker)
            .join_at(attacker_join_at),
    );
    if let Some(plan) = extra {
        attack_session = attack_session.receiver(ReceiverSpec::new().adversary(plan));
    }
    let mut d = Scenario::dumbbell(1.mbps())
        .seed(seed)
        .session(attack_session)
        .session(
            McastSessionSpec::new(variant)
                .groups(n_groups)
                .receiver(ReceiverSpec::new()),
        )
        .tcp(2)
        .build();
    d.run_secs(duration_secs);
    // The attacker is measured from the onset itself — a strategy whose
    // whole payoff is skipping the honest ramp (collusion) shows up in
    // those first seconds. The victim flows get a settling margin so
    // their loss reflects the sustained attack, not the transition.
    let attacker_bps = d.throughput_bps(d.sessions[0].receivers[0], onset_secs, duration_secs);
    let from = onset_secs + 5;
    let honest_bps = d.throughput_bps(d.sessions[1].receivers[0], from, duration_secs);
    let tcp_bps = (d.throughput_bps(d.tcp[0].sink, from, duration_secs)
        + d.throughput_bps(d.tcp[1].sink, from, duration_secs))
        / 2.0;
    let (rejected_keys, raw_igmp_blocked, detection_secs) = match d.sigma() {
        Some(m) => {
            let slot_secs = crate::dumbbell::SIGMA_SLOT.as_secs_f64();
            let detection = [m.stats.first_lockout_slot, m.stats.first_guess_alarm_slot]
                .into_iter()
                .flatten()
                .min()
                .map(|s| s as f64 * slot_secs);
            (m.stats.rejected_keys, m.stats.raw_igmp_blocked, detection)
        }
        None => (0, 0, None),
    };
    CellRun {
        attacker_bps,
        honest_bps,
        tcp_bps,
        rejected_keys,
        raw_igmp_blocked,
        detection_secs,
    }
}

/// The registered `matrix_robustness` experiment: sweep every
/// [`MATRIX_STRATEGIES`] strategy against every [`Variant::DEFENSES`]
/// defense, with one honest-baseline run per defense for the damage
/// metrics.
pub fn robustness_matrix(duration_secs: u64, onset_secs: u64, seed: u64) -> MatrixResult {
    let fair_share_bps = 250_000.0; // 1 Mbps over 2 multicast + 2 TCP flows.
    let mut cells = Vec::new();
    for (di, &variant) in Variant::DEFENSES.iter().enumerate() {
        // One seed per defense column: a cell and its baseline differ
        // only in the adversary — never in the seed or the topology.
        let column_seed = seed ^ ((di as u64 + 1) << 24);
        let baseline = matrix_run(
            variant,
            AttackPlan::honest(),
            SimTime::ZERO,
            None,
            duration_secs,
            onset_secs,
            column_seed,
        );
        // Strategy cells with an extra (feeder) receiver get their own
        // topology-matched baseline (same receiver count and join times,
        // everyone honest), computed lazily.
        let mut two_receiver_baseline: Option<CellRun> = None;
        for &name in MATRIX_STRATEGIES {
            let plans = strategy_cell_plans(name, onset_secs.secs());
            let base = if plans.extra.is_some() {
                two_receiver_baseline
                    .get_or_insert_with(|| {
                        matrix_run(
                            variant,
                            AttackPlan::honest(),
                            plans.attacker_join_at,
                            Some(AttackPlan::honest()),
                            duration_secs,
                            onset_secs,
                            column_seed,
                        )
                    })
                    .clone()
            } else {
                baseline.clone()
            };
            let run = matrix_run(
                variant,
                plans.attacker,
                plans.attacker_join_at,
                plans.extra,
                duration_secs,
                onset_secs,
                column_seed,
            );
            cells.push(MatrixCell {
                defense: variant.label(),
                strategy: name,
                attacker_bps: run.attacker_bps,
                honest_bps: run.honest_bps,
                tcp_bps: run.tcp_bps,
                baseline_honest_bps: base.honest_bps,
                damage: damage(
                    base.honest_bps,
                    run.honest_bps,
                    run.attacker_bps,
                    // "What the misbehaviour bought": the counterfactual is
                    // the same receiver behaving honestly, not the static
                    // fair share (honest multicast already over-shares).
                    base.attacker_bps,
                    run.detection_secs,
                    onset_secs as f64,
                ),
                rejected_keys: run.rejected_keys,
                raw_igmp_blocked: run.raw_igmp_blocked,
            });
        }
    }
    MatrixResult {
        onset_secs,
        duration_secs,
        fair_share_bps,
        defenses: Variant::DEFENSES.iter().map(|v| v.label()).collect(),
        strategies: MATRIX_STRATEGIES.to_vec(),
        cells,
    }
}

// ---------------------------------------------------------------------------
// Churn robustness: the defenses under dynamic membership
// ---------------------------------------------------------------------------

/// Mean dwell time of the churn receivers, seconds (exponentially
/// distributed around this).
pub const CHURN_DWELL_SECS: u64 = 15;

/// The default churn-rate sweep, arrivals/second (`Params::churn_rate`
/// overrides it with a single point).
pub const CHURN_RATES: &[f64] = &[0.0, 0.5, 2.0];

/// The default flash-crowd multiplier applied at the top churn point
/// (`Params::flash_factor` overrides it).
pub const CHURN_FLASH_FACTOR: f64 = 10.0;

/// One cell of the churn sweep: one defense under the inflate attacker
/// at one churn rate.
#[derive(Clone, Debug)]
pub struct ChurnCell {
    /// Defense label ([`Variant::label`]).
    pub defense: &'static str,
    /// Poisson arrival rate of the churn receivers, per second.
    pub churn_rate: f64,
    /// Whether a flash crowd hit at the attack onset.
    pub flash: bool,
    /// Churn receivers the workload generated (joins over the run).
    pub churn_receivers: u64,
    /// Attacker goodput over the post-onset window, bit/s.
    pub attacker_bps: f64,
    /// Permanent honest receiver's goodput under attack, bit/s.
    pub honest_bps: f64,
    /// Same receiver's goodput in the attack-free run at the same churn.
    pub baseline_honest_bps: f64,
    /// Damage/containment metrics relative to that baseline.
    pub damage: Damage,
    /// Keys the edge router rejected (0 when unprotected).
    pub rejected_keys: u64,
    /// Guard rejections of keys the plain table would have accepted —
    /// honest collateral of the collusion guard under churn.
    pub guard_false_positives: u64,
    /// Key tuples installed at the edge — the per-join control-plane
    /// load the churn generates.
    pub tuples_installed: u64,
    /// Session-join messages the edge processed.
    pub session_joins: u64,
}

/// The full churn sweep.
#[derive(Clone, Debug)]
pub struct ChurnResult {
    /// Attack onset, seconds.
    pub onset_secs: u64,
    /// Run duration, seconds.
    pub duration_secs: u64,
    /// Mean churn dwell time, seconds.
    pub mean_dwell_secs: u64,
    /// Flash-crowd multiplier used at the top churn point.
    pub flash_factor: f64,
    /// Defense column labels, in cell order.
    pub defenses: Vec<&'static str>,
    /// Churn-rate row labels, in cell order.
    pub churn_rates: Vec<f64>,
    /// Cells, defense-major then churn rate.
    pub cells: Vec<ChurnCell>,
}

/// Raw measurements of one churn run.
#[derive(Clone)]
struct ChurnRun {
    attacker_bps: f64,
    honest_bps: f64,
    churn_receivers: u64,
    rejected_keys: u64,
    guard_false_positives: u64,
    tuples_installed: u64,
    session_joins: u64,
    detection_secs: Option<f64>,
}

/// One churn run: a session of `variant` holding the attacker and a
/// permanent honest receiver, two TCP flows, and a Poisson churn
/// workload (plus an optional flash crowd) joining and leaving the same
/// session — the matrix population under dynamic membership.
fn churn_run(
    variant: Variant,
    attacker: AttackPlan,
    churn_rate: f64,
    flash: Option<crate::workload::FlashCrowd>,
    duration_secs: u64,
    onset_secs: u64,
    seed: u64,
) -> ChurnRun {
    let n_groups = variant_groups(variant);
    let mut w = crate::workload::WorkloadSpec::none(SimDuration::from_secs(duration_secs))
        .poisson(churn_rate, SimDuration::from_secs(CHURN_DWELL_SECS));
    if let Some(f) = flash {
        w = w.flash(f);
    }
    let mut d = Scenario::dumbbell(1.mbps())
        .seed(seed)
        .session(
            McastSessionSpec::new(variant)
                .groups(n_groups)
                .receiver(ReceiverSpec::new().adversary(attacker))
                .receiver(ReceiverSpec::new()),
        )
        .tcp(2)
        .workload(w)
        .build();
    // Spec order survives the workload expansion: receiver 0 is the
    // attacker, 1 the permanent honest receiver, the rest are churners.
    let churn_receivers = d.sessions[0].receivers.len() as u64 - 2;
    d.run_secs(duration_secs);
    let attacker_bps = d.throughput_bps(d.sessions[0].receivers[0], onset_secs, duration_secs);
    let honest_bps = d.throughput_bps(d.sessions[0].receivers[1], onset_secs + 5, duration_secs);
    let mut run = ChurnRun {
        attacker_bps,
        honest_bps,
        churn_receivers,
        rejected_keys: 0,
        guard_false_positives: 0,
        tuples_installed: 0,
        session_joins: 0,
        detection_secs: None,
    };
    if let Some(m) = d.sigma() {
        let slot_secs = crate::dumbbell::SIGMA_SLOT.as_secs_f64();
        run.rejected_keys = m.stats.rejected_keys;
        run.guard_false_positives = m.stats.guard_false_positives;
        run.tuples_installed = m.stats.tuples_installed;
        run.session_joins = m.stats.session_joins;
        run.detection_secs = [m.stats.first_lockout_slot, m.stats.first_guess_alarm_slot]
            .into_iter()
            .flatten()
            .min()
            .map(|s| s as f64 * slot_secs);
    }
    run
}

/// The registered `churn_robustness` experiment: the matrix's "inflate"
/// strategy against every [`Variant::DEFENSES`] defense at each churn
/// rate in `rates`, with a `flash_factor`× flash crowd landing at the
/// attack onset on the highest rate point. Each cell's baseline is the
/// attack-free run at the *same* churn — the damage metrics isolate the
/// attack from the churn itself.
pub fn churn_robustness(
    duration_secs: u64,
    onset_secs: u64,
    seed: u64,
    rates: &[f64],
    flash_factor: f64,
) -> ChurnResult {
    let onset = onset_secs.secs();
    let flash_at = |on: bool| {
        on.then(|| crate::workload::FlashCrowd {
            at: onset,
            factor: flash_factor,
            mean_dwell: SimDuration::from_secs(CHURN_DWELL_SECS),
            ramp: SimDuration::from_secs(2),
        })
    };
    let mut cells = Vec::new();
    for (di, &variant) in Variant::DEFENSES.iter().enumerate() {
        let column_seed = seed ^ ((di as u64 + 1) << 24);
        for (ri, &rate) in rates.iter().enumerate() {
            // The flash crowd rides the top churn point only: the cell
            // answers "does the defense still contain the attacker when
            // the group 10×es in seconds".
            let flash = ri + 1 == rates.len() && rates.len() > 1;
            let baseline = churn_run(
                variant,
                AttackPlan::honest(),
                rate,
                flash_at(flash),
                duration_secs,
                onset_secs,
                column_seed,
            );
            let attacker = AttackPlan::new(Timed::boxed(
                onset,
                Box::new(All::of(vec![
                    Box::new(InflateTo::all()),
                    Box::new(KeyGuess { rate: 10 }),
                ])),
            ));
            let run = churn_run(
                variant,
                attacker,
                rate,
                flash_at(flash),
                duration_secs,
                onset_secs,
                column_seed,
            );
            assert_eq!(
                baseline.churn_receivers, run.churn_receivers,
                "workload expansion must not depend on the adversary"
            );
            cells.push(ChurnCell {
                defense: variant.label(),
                churn_rate: rate,
                flash,
                churn_receivers: run.churn_receivers,
                attacker_bps: run.attacker_bps,
                honest_bps: run.honest_bps,
                baseline_honest_bps: baseline.honest_bps,
                damage: damage(
                    baseline.honest_bps,
                    run.honest_bps,
                    run.attacker_bps,
                    baseline.attacker_bps,
                    run.detection_secs,
                    onset_secs as f64,
                ),
                rejected_keys: run.rejected_keys,
                guard_false_positives: run.guard_false_positives,
                tuples_installed: run.tuples_installed,
                session_joins: run.session_joins,
            });
        }
    }
    ChurnResult {
        onset_secs,
        duration_secs,
        mean_dwell_secs: CHURN_DWELL_SECS,
        flash_factor,
        defenses: Variant::DEFENSES.iter().map(|v| v.label()).collect(),
        churn_rates: rates.to_vec(),
        cells,
    }
}

// ---------------------------------------------------------------------------
// Topology experiments: trees and parking lots beyond the dumbbell
// ---------------------------------------------------------------------------

/// The session group count for `variant`, shared by the robustness
/// matrix and the topology experiments: the replicated / threshold
/// ladders carry each group's *full* rate, so ten groups would outgrow
/// the bottleneck; six (≤ 759 kbps) fit.
fn variant_groups(variant: Variant) -> u32 {
    match variant {
        Variant::Replicated | Variant::Threshold => 6,
        _ => 10,
    }
}

/// The matrix's "inflate" strategy (InflateTo::all + key guessing)
/// activated at `onset`, targeted at `placement`.
fn inflate_plan_at(onset: SimTime, placement: Placement) -> AttackPlan {
    AttackPlan::new(Timed::boxed(
        onset,
        Box::new(All::of(vec![
            Box::new(InflateTo::all()),
            Box::new(KeyGuess { rate: 10 }),
        ])),
    ))
    .at(placement)
}

/// Goodput loss of `bps` against `baseline_bps`, percent (0 when the
/// baseline is empty).
fn loss_pct(baseline_bps: f64, bps: f64) -> f64 {
    if baseline_bps > 0.0 {
        (baseline_bps - bps) / baseline_bps * 100.0
    } else {
        0.0
    }
}

/// One row of the `tree_placement` experiment: one defense variant versus
/// the inflate attacker attached at one depth of the tree.
#[derive(Clone, Debug)]
pub struct TreePlacementRow {
    /// Defense label ([`Variant::label`]).
    pub defense: &'static str,
    /// Depth of the attacker's attachment router (tree depth = a leaf).
    pub attacker_depth: u32,
    /// Attacker goodput over the post-onset window, bit/s.
    pub attacker_bps: f64,
    /// The same receiver's goodput when behaving honestly, bit/s.
    pub attacker_baseline_bps: f64,
    /// Mean honest-leaf goodput under attack, bit/s.
    pub honest_mean_bps: f64,
    /// Mean honest-leaf goodput in the attack-free baseline, bit/s.
    pub baseline_mean_bps: f64,
    /// Mean honest loss across every leaf, percent of baseline.
    pub honest_loss_pct: f64,
    /// Mean loss of the leaves sharing the attacker's depth-1 subtree.
    pub subtree_loss_pct: f64,
    /// Mean loss of the leaves outside that subtree (collateral beyond
    /// the attacker's branch — near zero when damage is local).
    pub outside_loss_pct: f64,
    /// Guessed keys the edge routers rejected (0 when unprotected).
    pub rejected_keys: u64,
}

/// The full `tree_placement` result.
#[derive(Clone, Debug)]
pub struct TreePlacementResult {
    /// Tree depth (levels below the root).
    pub depth: u32,
    /// Children per interior router.
    pub fanout: u32,
    /// Attack onset, seconds.
    pub onset_secs: u64,
    /// Run duration, seconds.
    pub duration_secs: u64,
    /// Rows, defense-major then attacker depth `1..=depth`.
    pub rows: Vec<TreePlacementRow>,
}

/// Raw measurements of one tree run.
struct TreeRun {
    attacker_bps: f64,
    honest_bps: Vec<f64>,
    rejected_keys: u64,
}

/// One tree run: session 0 holds the (possibly attacking) placed
/// receiver, session 1 one honest receiver per leaf, both of `variant`,
/// over a 500 kbps balanced tree.
fn tree_run(
    variant: Variant,
    depth: u32,
    fanout: u32,
    attacker: AttackPlan,
    duration_secs: u64,
    onset_secs: u64,
    seed: u64,
) -> TreeRun {
    let n_groups = variant_groups(variant);
    let leaves = (fanout as usize).pow(depth);
    let mut t = Scenario::balanced_tree(depth, fanout, 500.kbps())
        .seed(seed)
        .session(
            McastSessionSpec::new(variant)
                .groups(n_groups)
                .receiver(ReceiverSpec::new().adversary(attacker)),
        )
        .session(
            McastSessionSpec::new(variant)
                .groups(n_groups)
                .with_receivers((0..leaves).map(|_| ReceiverSpec::new())),
        )
        .build_net();
    t.run_secs(duration_secs);
    let attacker_bps = t.throughput_bps(t.sessions[0].receivers[0], onset_secs, duration_secs);
    let from = onset_secs + 5;
    let honest_bps = t.sessions[1]
        .receivers
        .iter()
        .map(|&r| t.throughput_bps(r, from, duration_secs))
        .collect();
    let rejected_keys = t.sigmas().map(|m| m.stats.rejected_keys).sum();
    TreeRun {
        attacker_bps,
        honest_bps,
        rejected_keys,
    }
}

/// The registered `tree_placement` experiment: on a balanced
/// `fanout`-ary tree with one honest receiver per leaf, attach the
/// matrix's inflate attacker at every depth `1..=depth` of leaf 0's root
/// path and measure honest damage — overall, inside the attacker's
/// depth-1 subtree, and outside it — for every [`Variant::DEFENSES`]
/// defense, against a per-(defense, depth) honest baseline.
pub fn tree_placement(
    depth: u32,
    fanout: u32,
    duration_secs: u64,
    onset_secs: u64,
    seed: u64,
) -> TreePlacementResult {
    assert!(depth >= 1, "placement needs at least one level");
    let leaves = (fanout as usize).pow(depth);
    let subtree = leaves / fanout as usize; // leaf 0's depth-1 subtree
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut rows = Vec::new();
    for (di, &variant) in Variant::DEFENSES.iter().enumerate() {
        let column_seed = seed ^ ((di as u64 + 1) << 24);
        for d in 1..=depth {
            let placement = Placement::Interior { depth: d, leaf: 0 };
            // The baseline shares seed, topology and placement with the
            // attack run — they differ only in the adversary.
            let base = tree_run(
                variant,
                depth,
                fanout,
                AttackPlan::honest().at(placement),
                duration_secs,
                onset_secs,
                column_seed,
            );
            let run = tree_run(
                variant,
                depth,
                fanout,
                inflate_plan_at(onset_secs.secs(), placement),
                duration_secs,
                onset_secs,
                column_seed,
            );
            let honest_mean_bps = mean(&run.honest_bps);
            let baseline_mean_bps = mean(&base.honest_bps);
            rows.push(TreePlacementRow {
                defense: variant.label(),
                attacker_depth: d,
                attacker_bps: run.attacker_bps,
                attacker_baseline_bps: base.attacker_bps,
                honest_mean_bps,
                baseline_mean_bps,
                honest_loss_pct: loss_pct(baseline_mean_bps, honest_mean_bps),
                subtree_loss_pct: loss_pct(
                    mean(&base.honest_bps[..subtree]),
                    mean(&run.honest_bps[..subtree]),
                ),
                outside_loss_pct: loss_pct(
                    mean(&base.honest_bps[subtree..]),
                    mean(&run.honest_bps[subtree..]),
                ),
                rejected_keys: run.rejected_keys,
            });
        }
    }
    TreePlacementResult {
        depth,
        fanout,
        onset_secs,
        duration_secs,
        rows,
    }
}

/// Per-hop measurements of the `parking_lot_fairness` experiment.
#[derive(Clone, Debug)]
pub struct ParkingLotHop {
    /// 1-based hop index: the honest receiver behind this many
    /// bottlenecks.
    pub hop: u32,
    /// Its goodput under attack, bit/s.
    pub honest_bps: f64,
    /// Its goodput in the attack-free baseline, bit/s.
    pub baseline_bps: f64,
    /// Goodput loss, percent of baseline.
    pub honest_loss_pct: f64,
    /// The hop's local cross-traffic CBR goodput under attack, bit/s.
    pub cbr_bps: f64,
    /// The same CBR's goodput in the baseline, bit/s.
    pub cbr_baseline_bps: f64,
}

/// One defense variant's share breakdown.
#[derive(Clone, Debug)]
pub struct ParkingLotVariantRows {
    /// Variant label ([`Variant::label`]).
    pub variant: &'static str,
    /// Attacker goodput over the post-onset window, bit/s.
    pub attacker_bps: f64,
    /// The same receiver's honest-baseline goodput, bit/s.
    pub attacker_baseline_bps: f64,
    /// Per-hop honest and cross-traffic shares.
    pub hops: Vec<ParkingLotHop>,
}

/// The full `parking_lot_fairness` result.
#[derive(Clone, Debug)]
pub struct ParkingLotResult {
    /// Number of chained bottlenecks.
    pub bottlenecks: usize,
    /// Per-hop cross-traffic CBR rate, bit/s.
    pub per_hop_cbr_bps: u64,
    /// Attack onset, seconds.
    pub onset_secs: u64,
    /// Run duration, seconds.
    pub duration_secs: u64,
    /// One entry per [`Variant::BOTH`] variant, DL first.
    pub variants: Vec<ParkingLotVariantRows>,
}

/// Raw measurements of one parking-lot run.
struct ParkingLotRun {
    attacker_bps: f64,
    honest_bps: Vec<f64>,
    cbr_bps: Vec<f64>,
}

/// One parking-lot run: the attacker session's receiver sits behind the
/// last bottleneck (its traffic crosses every hop), the honest session
/// has one receiver per hop, and a CBR enters and leaves at each hop.
fn parking_lot_run(
    variant: Variant,
    bottlenecks: usize,
    per_hop_cbr_bps: u64,
    attacker: AttackPlan,
    duration_secs: u64,
    onset_secs: u64,
    seed: u64,
) -> ParkingLotRun {
    let n_groups = variant_groups(variant);
    let mut t = Scenario::parking_lot(bottlenecks, 1.mbps())
        .per_hop_cbr(per_hop_cbr_bps)
        .seed(seed)
        .session(
            McastSessionSpec::new(variant)
                .groups(n_groups)
                .receiver(ReceiverSpec::new().adversary(attacker)),
        )
        .session(
            McastSessionSpec::new(variant)
                .groups(n_groups)
                .with_receivers((0..bottlenecks).map(|_| ReceiverSpec::new())),
        )
        .build_net();
    t.run_secs(duration_secs);
    let attacker_bps = t.throughput_bps(t.sessions[0].receivers[0], onset_secs, duration_secs);
    let from = onset_secs + 5;
    let measure = |agents: &[mcc_netsim::AgentId], t: &BuiltTopology| -> Vec<f64> {
        agents
            .iter()
            .map(|&a| t.throughput_bps(a, from, duration_secs))
            .collect()
    };
    let honest_bps = measure(&t.sessions[1].receivers, &t);
    let cbr_bps = measure(&t.hop_cbr_sinks, &t);
    ParkingLotRun {
        attacker_bps,
        honest_bps,
        cbr_bps,
    }
}

/// The registered `parking_lot_fairness` experiment: per-hop goodput
/// shares on a multi-bottleneck parking lot, honest baseline versus an
/// [`InflateTo`] attacker whose traffic crosses every hop, for FLID-DL
/// (attack lands everywhere) and FLID-DS (contained at the edge).
pub fn parking_lot_fairness(
    bottlenecks: usize,
    per_hop_cbr_bps: u64,
    duration_secs: u64,
    onset_secs: u64,
    seed: u64,
) -> ParkingLotResult {
    let last_hop = Placement::Leaf(bottlenecks - 1);
    let mut variants = Vec::new();
    for (vi, &variant) in Variant::BOTH.iter().enumerate() {
        let column_seed = seed ^ ((vi as u64 + 1) << 16);
        let run_with = |attacker: AttackPlan| {
            parking_lot_run(
                variant,
                bottlenecks,
                per_hop_cbr_bps,
                attacker,
                duration_secs,
                onset_secs,
                column_seed,
            )
        };
        let base = run_with(AttackPlan::honest().at(last_hop));
        let attack = AttackPlan::new(Timed::at(onset_secs.secs(), InflateTo::all())).at(last_hop);
        let run = run_with(attack);
        let hops = (0..bottlenecks)
            .map(|h| ParkingLotHop {
                hop: h as u32 + 1,
                honest_bps: run.honest_bps[h],
                baseline_bps: base.honest_bps[h],
                honest_loss_pct: loss_pct(base.honest_bps[h], run.honest_bps[h]),
                cbr_bps: run.cbr_bps[h],
                cbr_baseline_bps: base.cbr_bps[h],
            })
            .collect();
        variants.push(ParkingLotVariantRows {
            variant: variant.label(),
            attacker_bps: run.attacker_bps,
            attacker_baseline_bps: base.attacker_bps,
            hops,
        });
    }
    ParkingLotResult {
        bottlenecks,
        per_hop_cbr_bps,
        onset_secs,
        duration_secs,
        variants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Variant::{FlidDl, FlidDs};

    /// Scaled-down Figure 1: the FLID-DL attack pays off.
    #[test]
    fn attack_pays_off_unprotected() {
        let r = attack_experiment(FlidDl, 60, 25, 42, &Params::default());
        let [f1, f2, t1, t2] = [
            r.post_attack_avg_bps[0],
            r.post_attack_avg_bps[1],
            r.post_attack_avg_bps[2],
            r.post_attack_avg_bps[3],
        ];
        assert!(
            f1 > 450_000.0,
            "attacker should exceed its 250k fair share: {f1}"
        );
        assert!(f1 > 1.8 * f2, "at the honest receiver's expense: {f1} {f2}");
        assert!(f1 > 1.8 * t1.max(t2), "and TCP's: {f1} {t1} {t2}");
    }

    /// Scaled-down Figure 7: FLID-DS keeps the allocation fair.
    #[test]
    fn attack_neutralized_protected() {
        let r = attack_experiment(FlidDs, 60, 25, 42, &Params::default());
        let f1 = r.post_attack_avg_bps[0];
        let f2 = r.post_attack_avg_bps[1];
        let t_min = r.post_attack_avg_bps[2].min(r.post_attack_avg_bps[3]);
        assert!(
            f1 < 400_000.0,
            "attacker must stay near its fair share: {f1}"
        );
        assert!(f2 > 100_000.0, "honest multicast survives: {f2}");
        assert!(t_min > 100_000.0, "TCP survives: {t_min}");
    }

    /// Scaled-down Figure 8c: FLID-DL and FLID-DS deliver similar average
    /// throughput without cross traffic.
    #[test]
    fn dl_and_ds_average_throughput_similar() {
        let ns = [2u32];
        let dl = throughput_vs_sessions(FlidDl, &ns, false, 60, 7);
        let ds = throughput_vs_sessions(FlidDs, &ns, false, 60, 7);
        let (a, b) = (dl[0].avg_bps, ds[0].avg_bps);
        assert!(a > 120_000.0 && b > 120_000.0, "both near fair: {a} {b}");
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 1.45, "parity: {a} vs {b}");
    }

    /// Scaled-down Figure 8e: the burst suppresses multicast throughput
    /// and it recovers afterwards.
    #[test]
    fn responsiveness_to_cbr_burst() {
        let s = responsiveness(FlidDs, 60, 20, 35, 3, &Params::default());
        let before: f64 = s.points[10..18].iter().map(|p| p.1).sum::<f64>() / 8.0;
        let during: f64 = s.points[25..33].iter().map(|p| p.1).sum::<f64>() / 8.0;
        let after: f64 = s.points[50..58].iter().map(|p| p.1).sum::<f64>() / 8.0;
        assert!(
            during < 0.6 * before,
            "burst must bite: before {before} during {during}"
        );
        assert!(
            after > 1.5 * during,
            "and release: during {during} after {after}"
        );
    }

    /// Scaled-down Figure 8g/8h core claim: late joiners converge to the
    /// early receivers' level.
    #[test]
    fn convergence_of_staggered_receivers() {
        let r = convergence(FlidDs, 45, 11);
        let finals: Vec<f64> = r
            .levels
            .iter()
            .map(|s| s.points.last().map(|p| p.1).unwrap_or(0.0))
            .collect();
        let max = finals.iter().cloned().fold(0.0, f64::max);
        let min = finals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max - min <= 1.0,
            "final levels within one layer: {finals:?}"
        );
        assert!(max >= 2.0, "receivers actually climbed: {finals:?}");
    }

    /// Figure 9 magnitudes: both overheads under 1 %, DELTA ≈ 0.8 %.
    #[test]
    fn overhead_magnitudes_match_paper() {
        let rows = overhead_vs_groups(&[2, 10, 20], 20, 5);
        for row in &rows {
            assert!(
                (row.delta_analytic - 0.008).abs() < 0.001,
                "DELTA ≈ 0.8 %: {row:?}"
            );
            assert!(row.sigma_analytic < 0.006, "SIGMA < 0.6 %: {row:?}");
            assert!(
                (row.delta_measured - row.delta_analytic).abs() < 0.002,
                "measured tracks closed form: {row:?}"
            );
            assert!(row.sigma_measured < 0.012, "{row:?}");
        }
        let slot_rows = overhead_vs_slot(&[200, 500, 1000], 20, 5);
        assert!(
            slot_rows[0].sigma_analytic > slot_rows[2].sigma_analytic,
            "SIGMA overhead falls with slot duration"
        );
    }

    /// Tree placement: an unprotected inflate attacker starves exactly
    /// the leaves sharing its depth-1 subtree; the hardened variants
    /// contain the damage at every depth.
    #[test]
    fn tree_placement_damage_is_local_and_contained_by_defenses() {
        let r = tree_placement(2, 2, 30, 10, 42);
        assert_eq!(r.rows.len(), Variant::DEFENSES.len() * 2);
        for row in &r.rows {
            match row.defense {
                "FLID-DL" => {
                    assert!(
                        row.attacker_bps > 1.2 * row.attacker_baseline_bps,
                        "depth {}: inflation must pay off unprotected: {} vs {}",
                        row.attacker_depth,
                        row.attacker_bps,
                        row.attacker_baseline_bps
                    );
                    assert!(
                        row.subtree_loss_pct > 60.0,
                        "depth {}: subtree must starve: {}",
                        row.attacker_depth,
                        row.subtree_loss_pct
                    );
                    assert!(
                        row.outside_loss_pct < 15.0,
                        "depth {}: damage must stay in the branch: {}",
                        row.attacker_depth,
                        row.outside_loss_pct
                    );
                }
                "FLID-DS" => {
                    assert!(
                        row.attacker_bps < 1.3 * row.attacker_baseline_bps,
                        "depth {}: SIGMA must contain the attacker: {} vs {}",
                        row.attacker_depth,
                        row.attacker_bps,
                        row.attacker_baseline_bps
                    );
                    assert!(
                        row.honest_loss_pct < 20.0,
                        "depth {}: honest leaves survive: {}",
                        row.attacker_depth,
                        row.honest_loss_pct
                    );
                    assert!(row.rejected_keys > 0, "guessed keys must be rejected");
                }
                _ => {}
            }
        }
    }

    /// Parking lot: the inflating end-to-end receiver squeezes honest
    /// flows on every hop under FLID-DL; FLID-DS keeps per-hop shares at
    /// their baselines.
    #[test]
    fn parking_lot_attack_lands_on_every_hop_unless_protected() {
        let r = parking_lot_fairness(2, 100_000, 30, 10, 42);
        assert_eq!(r.variants.len(), 2);
        let dl = &r.variants[0];
        assert_eq!(dl.variant, "FLID-DL");
        assert!(
            dl.attacker_bps > 1.4 * dl.attacker_baseline_bps,
            "inflation must pay off: {} vs {}",
            dl.attacker_bps,
            dl.attacker_baseline_bps
        );
        for hop in &dl.hops {
            assert!(
                hop.honest_loss_pct > 50.0,
                "hop {}: honest flow must be squeezed: {}",
                hop.hop,
                hop.honest_loss_pct
            );
        }
        let ds = &r.variants[1];
        assert_eq!(ds.variant, "FLID-DS");
        assert!(
            ds.attacker_bps < 1.2 * ds.attacker_baseline_bps,
            "SIGMA must contain the attacker: {} vs {}",
            ds.attacker_bps,
            ds.attacker_baseline_bps
        );
        for hop in &ds.hops {
            assert!(
                hop.honest_loss_pct < 15.0,
                "hop {}: honest share must hold: {}",
                hop.hop,
                hop.honest_loss_pct
            );
            assert!(
                hop.cbr_bps > 60_000.0,
                "hop {}: cross traffic must survive: {}",
                hop.hop,
                hop.cbr_bps
            );
        }
    }

    /// Figure 8f shape: throughput roughly independent of RTT under
    /// FLID-DS.
    #[test]
    fn rtt_independence() {
        let rows = rtt_experiment(FlidDs, 60, 13);
        let rates: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!(mean > 100_000.0, "receivers get service: {mean}");
        for (rtt, rate) in &rows {
            assert!(
                (rate - mean).abs() < 0.35 * mean,
                "rtt {rtt} deviates: {rate} vs mean {mean}"
            );
        }
    }
}

/// One row of the FEC-repetition ablation.
#[derive(Clone, Debug)]
pub struct FecAblationRow {
    /// Repetition factor `z`.
    pub repeat: u32,
    /// Loss probability applied to special packets.
    pub loss: f64,
    /// Fraction of slots whose key tuples failed to reach the router
    /// completely.
    pub slot_miss_rate: f64,
    /// Bit-expansion factor actually paid.
    pub expansion: f64,
}

/// Ablation: FEC repetition factor versus key-table miss rate under
/// random special-packet loss (the `z` the paper sizes against 50 % loss
/// in §5.4). Monte-Carlo over `slots` independent slots of a 10-group
/// announcement.
pub fn fec_ablation(repeats: &[u32], losses: &[f64], slots: u32, seed: u64) -> Vec<FecAblationRow> {
    use mcc_delta::Key;
    use mcc_sigma::fec::{chunk_tuples, encode_with_repeats, FecAccounting};
    use mcc_sigma::KeyTuple;
    use mcc_simcore::DetRng;

    let mut rng = DetRng::new(seed);
    let tuples: Vec<(GroupAddr, KeyTuple)> = (0..10)
        .map(|i| {
            (
                GroupAddr(i),
                KeyTuple {
                    top: Key(i as u64),
                    decrease: Some(Key(100 + i as u64)),
                    increase: None,
                },
            )
        })
        .collect();
    let mut rows = Vec::new();
    for &repeat in repeats {
        for &loss in losses {
            let chunks = chunk_tuples(0, tuples.clone());
            let mut missed = 0u32;
            let mut acc = FecAccounting::default();
            for _ in 0..slots {
                let coded = encode_with_repeats(&chunks, repeat);
                acc = FecAccounting::measure(&chunks, &coded);
                // A slot is served iff every distinct chunk survives in
                // at least one copy.
                let survivors: Vec<u32> = coded
                    .iter()
                    .filter(|_| !rng.chance(loss))
                    .map(|c| c.index)
                    .collect();
                let all = chunks.iter().all(|c| survivors.contains(&c.index));
                if !all {
                    missed += 1;
                }
            }
            rows.push(FecAblationRow {
                repeat,
                loss,
                slot_miss_rate: missed as f64 / slots as f64,
                expansion: acc.expansion(),
            });
        }
    }
    rows
}

/// One row of the slot-duration ablation.
#[derive(Clone, Debug)]
pub struct SlotAblationRow {
    /// Slot duration in milliseconds.
    pub slot_ms: u64,
    /// Steady-state receiver goodput on a 1 Mbps private bottleneck.
    pub goodput_bps: f64,
    /// Seconds from burst onset until throughput first halves
    /// (responsiveness; smaller is faster).
    pub reaction_secs: f64,
    /// Analytic SIGMA overhead at this slot duration.
    pub sigma_overhead: f64,
}

/// Ablation: the FLID-DS slot duration trades responsiveness against
/// SIGMA overhead — the paper sets 250 ms to match FLID-DL's 500 ms
/// granularity through SIGMA's two-slot enforcement.
pub fn slot_ablation(slot_ms: &[u64], seed: u64) -> Vec<SlotAblationRow> {
    use mcc_flid::{FlidReceiver, FlidSender, Mode as FlidMode};
    use mcc_netsim::prelude::*;
    use mcc_sigma::{SigmaConfig, SigmaEdgeModule};

    slot_ms
        .iter()
        .map(|&ms| {
            // A hand-built dumbbell (the shared builder pins 250 ms slots).
            let mut sim = Sim::new(seed ^ ms, SimDuration::from_secs(1));
            let s = sim.add_node();
            let a = sim.add_node();
            let b = sim.add_node();
            let h = sim.add_node();
            sim.add_duplex_link(
                s,
                a,
                10_000_000,
                SimDuration::from_millis(10),
                Queue::drop_tail(1_000_000),
                Queue::drop_tail(1_000_000),
            );
            let buf = (2.0 * 1_000_000.0 * 0.08 / 8.0) as u64;
            sim.add_duplex_link(
                a,
                b,
                1_000_000,
                SimDuration::from_millis(20),
                Queue::drop_tail(buf),
                Queue::drop_tail(buf),
            );
            sim.add_duplex_link(
                b,
                h,
                10_000_000,
                SimDuration::from_millis(10),
                Queue::drop_tail(1_000_000),
                Queue::drop_tail(1_000_000),
            );
            let mut cfg = FlidConfig::paper(
                (1..=10).map(GroupAddr).collect(),
                GroupAddr(0),
                FlowId(1),
                true,
            );
            cfg.slot = SimDuration::from_millis(ms);
            for g in cfg.groups.iter().chain([&cfg.control_group]) {
                sim.register_group(*g, s);
            }
            sim.set_edge_module(
                b,
                Box::new(SigmaEdgeModule::new(SigmaConfig::new(cfg.slot))),
            );
            let r = sim.add_agent(
                h,
                Box::new(FlidReceiver::new(
                    cfg.clone(),
                    FlidMode::Ds { router: b },
                    Behavior::Honest,
                )),
                SimTime::from_millis(5),
            );
            // An 800 kbps burst at t = 40 s probes the reaction time.
            use mcc_traffic::{CbrConfig, CbrSource, CountingSink};
            let cs = sim.add_node();
            let cr = sim.add_node();
            sim.add_duplex_link(
                cs,
                a,
                10_000_000,
                SimDuration::from_millis(10),
                Queue::drop_tail(1_000_000),
                Queue::drop_tail(1_000_000),
            );
            sim.add_duplex_link(
                b,
                cr,
                10_000_000,
                SimDuration::from_millis(10),
                Queue::drop_tail(1_000_000),
                Queue::drop_tail(1_000_000),
            );
            let cbr_sink = sim.add_agent(cr, Box::new(CountingSink::default()), SimTime::ZERO);
            sim.add_agent(
                cs,
                Box::new(CbrSource::new(CbrConfig::steady(
                    800_000,
                    576 * 8,
                    Dest::Agent(cbr_sink),
                    FlowId(2),
                    SimTime::from_secs(40),
                    SimTime::from_secs(60),
                ))),
                SimTime::ZERO,
            );
            sim.add_agent(s, Box::new(FlidSender::new(cfg)), SimTime::ZERO);
            sim.finalize();
            sim.run_until(SimTime::from_secs(60));

            let series = sim.monitor().agent_series_bps(r, SimTime::from_secs(60));
            let steady: f64 = series[20..38].iter().sum::<f64>() / 18.0;
            let reaction = series[40..]
                .iter()
                .position(|&v| v < steady / 2.0)
                .map(|i| i as f64 + 0.5)
                .unwrap_or(f64::INFINITY);
            let params = OverheadParams {
                n_groups: 10,
                data_bits_per_packet: 4608,
                key_bits: 16,
                slot_number_bits: 8,
                base_rate_bps: 100_000.0,
                session_rate_bps: 3_844_335.937_5,
                slot_secs: ms as f64 / 1000.0,
            };
            SlotAblationRow {
                slot_ms: ms,
                goodput_bps: steady,
                reaction_secs: reaction,
                sigma_overhead: sigma_overhead(&params, 2.0, 2.0, 512.0),
            }
        })
        .collect()
}

/// The registered seed of the `perf_events` experiment.
pub const PERF_SEED: u64 = 42;
/// Full-size `perf_events` scenario: `(receivers, simulated seconds)`.
pub const PERF_FULL: (usize, u64) = (2000, 30);
/// Quick-mode (CI smoke) `perf_events` scenario.
pub const PERF_QUICK: (usize, u64) = (300, 10);

/// Result of the [`perf_events`] macro-benchmark: raw simulator speed on
/// a wide-dumbbell fan-out, the hot path behind every figure.
#[derive(Clone, Debug)]
pub struct PerfRow {
    /// Receiver population of the single FLID-DL session.
    pub receivers: usize,
    /// Simulated horizon in seconds.
    pub sim_secs: u64,
    /// Events the loop processed.
    pub events: u64,
    /// The deepest the future event list ever got.
    pub peak_queue_depth: usize,
    /// Wall-clock spent inside `run_until` (excludes scenario assembly).
    pub wall_secs: f64,
    /// `events / wall_secs` — the headline throughput number.
    pub events_per_sec: f64,
}

/// Macro-benchmark: one FLID-DL session fanning out to `receivers` hosts
/// across a 10 Mbps dumbbell, plus two TCP flows. Nothing throttles the
/// receivers, so every data packet crossing the bottleneck is replicated
/// onto every access link — the multicast branching and event-queue churn
/// that dominates large-population scenarios. Deterministic in `seed`
/// except for the wall-clock fields.
pub fn perf_events(receivers: usize, duration_secs: u64, seed: u64) -> PerfRow {
    let mut spec = crate::dumbbell::DumbbellSpec::new(seed, 10_000_000);
    spec.mcast = vec![McastSessionSpec::honest(Variant::FlidDl, receivers)];
    spec.tcp = 2;
    let mut d = Dumbbell::build(spec);
    // detlint: allow(wall-clock) — events/sec reporting; never feeds sim state
    let wall = std::time::Instant::now();
    d.sim.run_until(SimTime::from_secs(duration_secs));
    let wall = wall.elapsed().as_secs_f64();
    let events = d.sim.world.processed_events();
    PerfRow {
        receivers,
        sim_secs: duration_secs,
        events,
        peak_queue_depth: d.sim.world.peak_pending_events(),
        wall_secs: wall,
        events_per_sec: events as f64 / wall.max(1e-9),
    }
}

/// Sharded counterpart of [`perf_events`]: the identical scenario driven
/// through the conservative parallel-in-time core. `workers == 1`
/// executes the shards sequentially on the calling thread (pure
/// cache-blocking, no thread spawns); `workers > 1` fans the shards out
/// over that many scoped threads per window. The second return value is
/// the per-shard executed-event counts (index 0 = root shard); its length
/// is the shard count the automatic partitioner picked (length 1 means it
/// declined and the run fell back to the serial loop). The `events` count
/// is bit-identical to the serial run's by construction.
pub fn perf_events_sharded(
    receivers: usize,
    duration_secs: u64,
    seed: u64,
    workers: usize,
) -> (PerfRow, Vec<u64>) {
    let mut spec = crate::dumbbell::DumbbellSpec::new(seed, 10_000_000);
    spec.mcast = vec![McastSessionSpec::honest(Variant::FlidDl, receivers)];
    spec.tcp = 2;
    let mut d = Dumbbell::build(spec);
    // detlint: allow(wall-clock) — events/sec reporting; never feeds sim state
    let wall = std::time::Instant::now();
    let per_shard = mcc_netsim::shard::run_until_sharded_stats(
        &mut d.sim,
        SimTime::from_secs(duration_secs),
        workers,
    );
    let wall = wall.elapsed().as_secs_f64();
    let events = d.sim.world.processed_events();
    let row = PerfRow {
        receivers,
        sim_secs: duration_secs,
        events,
        peak_queue_depth: d.sim.world.peak_pending_events(),
        wall_secs: wall,
        events_per_sec: events as f64 / wall.max(1e-9),
    };
    (row, per_shard)
}

/// The registered seed of the `scale_sweep` experiment.
pub const SCALE_SEED: u64 = 47;
/// Full-size `scale_sweep` receiver populations, in ascending order (the
/// sweep relies on monotone ordering for its peak-RSS deltas).
pub const SCALE_FULL: &[u64] = &[1_000, 10_000, 100_000, 1_000_000];
/// Quick-mode (CI smoke) populations.
pub const SCALE_QUICK: &[u64] = &[1_000, 10_000];
/// Simulated horizon of every sweep point, seconds.
pub const SCALE_SECS: u64 = 10;
/// Cohort hosts per point: `min(SCALE_HOSTS, receivers)` edge interfaces,
/// each carrying a cohort of `receivers / hosts` members.
pub const SCALE_HOSTS: u64 = 100;

/// One point of the [`scale_point`] sweep.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Modeled receiver population (sum of cohort counts).
    pub receivers: u64,
    /// Cohort hosts (edge interfaces) carrying that population.
    pub hosts: u64,
    /// Simulated horizon in seconds.
    pub sim_secs: u64,
    /// Events the loop processed.
    pub events: u64,
    /// Wall-clock spent inside `run_until` (excludes scenario assembly).
    pub wall_secs: f64,
    /// `events / wall_secs`.
    pub events_per_sec: f64,
    /// `VmHWM` after the point ran (0 where `/proc` is unavailable).
    pub peak_rss_bytes: u64,
    /// How much this point raised the process peak (its memory bill; a
    /// lower bound when an earlier peak already covered it).
    pub rss_delta_bytes: u64,
    /// `rss_delta_bytes / receivers` — the headline O(1)-per-receiver
    /// claim, asserted against [`scale_ceiling_bytes_per_receiver`].
    pub bytes_per_receiver: f64,
    /// SIGMA grant state at the end of the run: host-facing interfaces
    /// holding grants…
    pub grant_ifaces: u64,
    /// …and *distinct* interned tables behind them (the slab win).
    pub grant_tables: u64,
    /// Count-weighted mean per-receiver goodput over the second half of
    /// the horizon, bit/s — a sanity anchor that the scaled world still
    /// simulates the protocol rather than an empty loop.
    pub mean_receiver_bps: f64,
}

/// Process peak resident set (`VmHWM`) in bytes, from
/// `/proc/self/status`. Returns 0 on platforms without procfs — callers
/// treat 0 as "unmeasured", and the memory-ceiling asserts are skipped.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
    }
    0
}

/// Memory ceiling asserted for a sweep point, bytes per modeled receiver.
/// Cohorts make per-receiver state O(distinct behaviours), so the budget
/// *falls* by roughly a decade per population decade: the fixed world
/// cost (hosts, links, queues, monitor bins) amortizes over ever more
/// receivers. The small-population ceilings are deliberately loose —
/// allocator warm-up and procfs granularity dominate there.
pub fn scale_ceiling_bytes_per_receiver(receivers: u64) -> f64 {
    match receivers {
        0..=9_999 => 1_048_576.0,      // 1 MiB — sanity only
        10_000..=99_999 => 131_072.0,  // 128 KiB
        100_000..=999_999 => 16_384.0, // 16 KiB
        _ => 2_048.0,                  // 2 KiB at a million receivers
    }
}

/// One point of the million-receiver scale sweep: a paper dumbbell with
/// `min(SCALE_HOSTS, receivers)` cohort hosts behind the bottleneck, each
/// a [`CohortReceiver`](mcc_flid::CohortReceiver) of `receivers / hosts`
/// synchronized honest members, FLID-DS with full DELTA + SIGMA edge
/// enforcement, plus two TCP Reno flows. Event count and every protocol
/// byte are deterministic in `seed`; wall-clock and RSS fields are not.
///
/// Simulation work scales with *hosts* (packet replication per edge
/// interface) while modeled receivers scale with cohort counts — so
/// events/sec stays flat and bytes/receiver collapses as the population
/// grows. That separation is the tentpole claim this sweep charts.
pub fn scale_point(receivers: u64, duration_secs: u64, seed: u64) -> ScaleRow {
    let hosts = receivers.min(SCALE_HOSTS);
    let base = receivers / hosts;
    let extra = receivers % hosts;
    let rss_before = peak_rss_bytes();
    let mut spec = TopologySpec::new(Topology::Dumbbell, seed, 10_000_000);
    let mut session = McastSessionSpec::new(Variant::FlidDs);
    for h in 0..hosts {
        let count = base + u64::from(h < extra);
        session = session.receiver(ReceiverSpec::new().cohort(count));
    }
    spec.mcast = vec![session];
    spec.tcp = 2;
    let mut t = spec.build();
    // detlint: allow(wall-clock) — events/sec reporting; never feeds sim state
    let wall = std::time::Instant::now();
    t.run_secs(duration_secs);
    let wall = wall.elapsed().as_secs_f64();
    let events = t.sim.world.processed_events();
    let (grant_ifaces, grant_tables) = t
        .sigmas()
        .map(|s| s.grant_interning())
        .fold((0u64, 0u64), |(i, d), (si, sd)| {
            (i + si as u64, d + sd as u64)
        });
    let mean_receiver_bps =
        t.session_mean_receiver_bps(&t.sessions[0], duration_secs / 2, duration_secs);
    let rss_after = peak_rss_bytes();
    let rss_delta = rss_after.saturating_sub(rss_before);
    ScaleRow {
        receivers,
        hosts,
        sim_secs: duration_secs,
        events,
        wall_secs: wall,
        events_per_sec: events as f64 / wall.max(1e-9),
        peak_rss_bytes: rss_after,
        rss_delta_bytes: rss_delta,
        bytes_per_receiver: rss_delta as f64 / receivers.max(1) as f64,
        grant_ifaces,
        grant_tables,
        mean_receiver_bps,
    }
}
