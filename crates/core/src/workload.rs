//! The event-driven membership workload engine.
//!
//! Every layer below this one used to assume static membership: the
//! receiver population was fixed at build time and stayed subscribed to
//! the end of the run. A [`WorkloadSpec`] replaces that assumption with
//! *arrival processes*: receivers join and leave mid-run (Poisson churn,
//! flash crowds, or an explicit trace), pick their session by a
//! popularity law (uniform or Zipf), and draw heterogeneous access
//! rates/RTTs and background-traffic mixes from distributions.
//!
//! ## Determinism discipline
//!
//! The engine never schedules anything itself. [`WorkloadSpec::apply`]
//! is a *pure function* of `(scenario seed, spec)`: it samples every
//! arrival up front from a [`DetRng`] derived from the scenario seed
//! (one forked stream per component, so adding a flash crowd does not
//! perturb the Poisson stream) and expands them into ordinary
//! [`ReceiverSpec`]s / [`CbrSpec`]s / TCP counts on the
//! [`TopologySpec`]. Joins and departures then run as ordinary
//! deterministic sim events (agent start times and FLID `DEPART`
//! timers), so workload runs are byte-identical across
//! `MCC_THREADS=1/2/1x4` like every other run. No wall clock, no global
//! RNG — `detlint` holds this module to the same rules as the
//! simulator core.
//!
//! A workload that generates nothing (rate 0, no flash, no background)
//! leaves the spec byte-identical to the static scenario — the
//! zero-churn inertness contract (enforced by proptest in
//! `tests/workload_inert.rs`).

use crate::dumbbell::{CbrSpec, ReceiverSpec};
use crate::topology::TopologySpec;
use mcc_simcore::{DetRng, SimDuration, SimTime};

/// Salt mixed into the scenario seed for the workload RNG root, so the
/// workload stream is independent of any other seed consumer.
const WORKLOAD_SALT: u64 = 0x57_4B_4C_44; // "WKLD"

/// Forked stream ids, one per sampling component.
const STREAM_ARRIVALS: u64 = 1;
const STREAM_ATTRS: u64 = 2;
const STREAM_FLASH: u64 = 3;
const STREAM_BACKGROUND: u64 = 4;

/// Hard cap on generated arrivals — a mis-set rate fails loudly instead
/// of building a million-agent sim by accident (use cohorts for scale).
const MAX_ARRIVALS: usize = 100_000;

/// The receiver arrival process.
#[derive(Clone, Debug, PartialEq)]
pub enum Arrivals {
    /// No churn (the static population only).
    Off,
    /// Poisson arrivals at `rate_hz` per second with exponentially
    /// distributed dwell times of the given mean. `rate_hz == 0` is the
    /// empty process.
    Poisson {
        rate_hz: f64,
        mean_dwell: SimDuration,
    },
    /// Trace-driven: explicit `(join, dwell)` pairs, replayed verbatim.
    Trace(Vec<(SimTime, SimDuration)>),
}

/// How an arrival picks its session.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Popularity {
    /// Every session equally likely.
    Uniform,
    /// Zipf over session index: session `k` (0-based) has weight
    /// `1 / (k+1)^exponent` — session 0 is the most popular.
    Zipf { exponent: f64 },
}

impl Popularity {
    /// Sample a session index in `0..n`.
    fn sample(&self, n: usize, rng: &mut DetRng) -> usize {
        debug_assert!(n > 0);
        match *self {
            Popularity::Uniform => rng.below(n as u64) as usize,
            Popularity::Zipf { exponent } => {
                // Hand-rolled CDF walk — populations are tiny (sessions,
                // not receivers), so O(n) per sample is fine.
                let weights: Vec<f64> = (0..n)
                    .map(|k| 1.0 / ((k + 1) as f64).powf(exponent))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut u = rng.next_f64() * total;
                for (k, w) in weights.iter().enumerate() {
                    u -= w;
                    if u <= 0.0 {
                        return k;
                    }
                }
                n - 1
            }
        }
    }
}

/// A flash crowd: at `at`, the standing population is multiplied.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlashCrowd {
    /// When the crowd hits.
    pub at: SimTime,
    /// Crowd size = `ceil(factor × standing receivers)` extra joins.
    pub factor: f64,
    /// How long crowd members stay (exponential mean).
    pub mean_dwell: SimDuration,
    /// Joins spread uniformly over `[at, at + ramp)` — "100× a group in
    /// seconds", not in one instant.
    pub ramp: SimDuration,
}

/// A scalar distribution for per-receiver attributes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Dist {
    /// Always `v`.
    Const(f64),
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given mean.
    Exp { mean: f64 },
}

impl Dist {
    /// Sample one value (non-negative by construction for the variants
    /// used here, given non-negative parameters).
    pub fn sample(&self, rng: &mut DetRng) -> f64 {
        match *self {
            Dist::Const(v) => v,
            Dist::Uniform { lo, hi } => rng.range_f64(lo, hi),
            Dist::Exp { mean } => rng.exponential_secs(mean),
        }
    }
}

/// Background CBR mix: `count` steady sources with rates drawn from
/// `rate_bps`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackgroundCbr {
    pub count: usize,
    pub rate_bps: Dist,
}

/// The declarative workload: what churn, flash and background traffic to
/// overlay on a static scenario. Expanded by [`WorkloadSpec::apply`].
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Arrivals are generated on `[0, horizon)`.
    pub horizon: SimDuration,
    /// The churn process.
    pub arrivals: Arrivals,
    /// Session choice per arrival.
    pub popularity: Popularity,
    /// Optional flash crowd on top of the churn.
    pub flash: Option<FlashCrowd>,
    /// Access-link capacity per churn receiver, bit/s.
    pub access_bps: Dist,
    /// Access-link one-way delay per churn receiver, milliseconds.
    pub access_delay_ms: Dist,
    /// Receivers represented by each arrival (1 = an individual agent;
    /// `n > 1` = a cohort of n synchronized receivers — the scale knob).
    pub cohort: u64,
    /// Extra TCP Reno cross-traffic sessions.
    pub extra_tcp: usize,
    /// Background CBR mix.
    pub background: Option<BackgroundCbr>,
}

impl WorkloadSpec {
    /// An inert workload over the given horizon: no churn, homogeneous
    /// paper-default links, no background. Guaranteed to leave any spec
    /// it is applied to unchanged.
    pub fn none(horizon: SimDuration) -> WorkloadSpec {
        WorkloadSpec {
            horizon,
            arrivals: Arrivals::Off,
            popularity: Popularity::Uniform,
            flash: None,
            access_bps: Dist::Const(10_000_000.0),
            access_delay_ms: Dist::Const(10.0),
            cohort: 1,
            extra_tcp: 0,
            background: None,
        }
    }

    /// Poisson churn at `rate_hz` arrivals/s with the given mean dwell.
    pub fn poisson(mut self, rate_hz: f64, mean_dwell: SimDuration) -> WorkloadSpec {
        assert!(rate_hz.is_finite() && rate_hz >= 0.0, "churn rate");
        self.arrivals = Arrivals::Poisson {
            rate_hz,
            mean_dwell,
        };
        self
    }

    /// Replay an explicit `(join, dwell)` trace.
    pub fn trace(mut self, joins: Vec<(SimTime, SimDuration)>) -> WorkloadSpec {
        self.arrivals = Arrivals::Trace(joins);
        self
    }

    /// Zipf session popularity with the given exponent.
    pub fn zipf(mut self, exponent: f64) -> WorkloadSpec {
        self.popularity = Popularity::Zipf { exponent };
        self
    }

    /// Add a flash crowd.
    pub fn flash(mut self, flash: FlashCrowd) -> WorkloadSpec {
        assert!(
            flash.factor.is_finite() && flash.factor >= 0.0,
            "flash factor"
        );
        self.flash = Some(flash);
        self
    }

    /// Heterogeneous access-link rates (bit/s).
    pub fn access_rates(mut self, dist: Dist) -> WorkloadSpec {
        self.access_bps = dist;
        self
    }

    /// Heterogeneous access-link delays (milliseconds).
    pub fn access_delays_ms(mut self, dist: Dist) -> WorkloadSpec {
        self.access_delay_ms = dist;
        self
    }

    /// Represent each arrival as a cohort of `n` synchronized receivers.
    pub fn cohort(mut self, n: u64) -> WorkloadSpec {
        assert!(n >= 1, "cohort multiplier must be at least 1");
        self.cohort = n;
        self
    }

    /// Add `n` TCP cross-traffic sessions to the mix.
    pub fn extra_tcp(mut self, n: usize) -> WorkloadSpec {
        self.extra_tcp = n;
        self
    }

    /// Add a background CBR mix.
    pub fn background(mut self, bg: BackgroundCbr) -> WorkloadSpec {
        self.background = Some(bg);
        self
    }

    /// Would this workload generate nothing at all? An inert workload's
    /// [`WorkloadSpec::apply`] provably leaves the spec untouched.
    pub fn is_inert(&self) -> bool {
        let no_arrivals = match &self.arrivals {
            Arrivals::Off => true,
            Arrivals::Poisson { rate_hz, .. } => *rate_hz == 0.0,
            Arrivals::Trace(t) => t.is_empty(),
        };
        no_arrivals && self.flash.is_none() && self.extra_tcp == 0 && self.background.is_none()
    }

    /// Expand the workload into concrete receiver/traffic specs on
    /// `spec`, deterministically from `spec.seed`. Arrivals land on the
    /// session chosen by the popularity law; each becomes an ordinary
    /// [`ReceiverSpec`] with its `join_at`/`leave_at` lifetime and
    /// sampled access parameters, appended in arrival-time order (the
    /// append order — and therefore agent/node ids — is a pure function
    /// of the spec, preserving the byte-identity contract).
    pub fn apply(&self, spec: &mut TopologySpec) {
        let mut root = DetRng::new(spec.seed ^ WORKLOAD_SALT);
        let mut arrivals_rng = root.fork(STREAM_ARRIVALS);
        let mut attrs_rng = root.fork(STREAM_ATTRS);
        let mut flash_rng = root.fork(STREAM_FLASH);
        let mut background_rng = root.fork(STREAM_BACKGROUND);

        let horizon = self.horizon.as_secs_f64();
        // (join, leave) lifetimes, churn stream first.
        let mut lifetimes: Vec<(SimTime, SimTime)> = Vec::new();
        match &self.arrivals {
            Arrivals::Off => {}
            Arrivals::Poisson {
                rate_hz,
                mean_dwell,
            } => {
                if *rate_hz > 0.0 {
                    let mean_gap = 1.0 / rate_hz;
                    let mut t = arrivals_rng.exponential_secs(mean_gap);
                    while t < horizon {
                        assert!(lifetimes.len() < MAX_ARRIVALS, "workload arrival cap");
                        let join = SimTime::from_nanos((t * 1e9) as u64);
                        let dwell =
                            arrivals_rng.exponential_secs(mean_dwell.as_secs_f64().max(1e-9));
                        let leave = join + SimDuration::from_nanos((dwell * 1e9) as u64);
                        lifetimes.push((join, leave));
                        t += arrivals_rng.exponential_secs(mean_gap);
                    }
                }
            }
            Arrivals::Trace(joins) => {
                for &(join, dwell) in joins {
                    lifetimes.push((join, join + dwell));
                }
            }
        }
        // Flash crowd: factor × the standing population (cohort-weighted
        // receivers specified statically), spread over the ramp.
        if let Some(f) = &self.flash {
            let standing: u64 = spec
                .mcast
                .iter()
                .flat_map(|m| m.receivers.iter().map(|r| r.cohort))
                .sum();
            let crowd = (f.factor * standing.max(1) as f64).ceil() as usize;
            assert!(
                lifetimes.len() + crowd <= MAX_ARRIVALS,
                "workload arrival cap"
            );
            let ramp = f.ramp.as_secs_f64().max(1e-9);
            for _ in 0..crowd {
                let join =
                    f.at + SimDuration::from_nanos((flash_rng.range_f64(0.0, ramp) * 1e9) as u64);
                let dwell = flash_rng.exponential_secs(f.mean_dwell.as_secs_f64().max(1e-9));
                lifetimes.push((join, join + SimDuration::from_nanos((dwell * 1e9) as u64)));
            }
        }
        // Canonical arrival order: by join time, stream order on ties.
        lifetimes.sort_by_key(|&(join, leave)| (join, leave));

        if !lifetimes.is_empty() {
            assert!(
                !spec.mcast.is_empty(),
                "a churn workload needs at least one session to join"
            );
            for (join_at, leave_at) in lifetimes {
                let si = self.popularity.sample(spec.mcast.len(), &mut attrs_rng);
                let bps = (self.access_bps.sample(&mut attrs_rng).max(1_000.0)) as u64;
                let delay_ms = self.access_delay_ms.sample(&mut attrs_rng).max(0.1);
                spec.mcast[si].receivers.push(ReceiverSpec {
                    join_at,
                    leave_at,
                    adversary: mcc_attack::AttackPlan::honest(),
                    access_delay: SimDuration::from_nanos((delay_ms * 1e6) as u64),
                    access_bps: bps,
                    cohort: self.cohort,
                });
            }
        }

        spec.tcp += self.extra_tcp;
        if let Some(bg) = &self.background {
            for _ in 0..bg.count {
                let rate = (bg.rate_bps.sample(&mut background_rng).max(1_000.0)) as u64;
                spec.extra_cbr.push(CbrSpec::steady(rate));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Units, Variant};
    use crate::topology::{McastSessionSpec, Topology};

    fn base_spec(sessions: usize) -> TopologySpec {
        let mut spec = TopologySpec::new(Topology::Dumbbell, 7, 1.mbps());
        spec.mcast = (0..sessions)
            .map(|_| McastSessionSpec::honest(Variant::FlidDs, 1))
            .collect();
        spec
    }

    #[test]
    fn inert_workload_leaves_the_spec_byte_identical() {
        let mut spec = base_spec(2);
        let before = format!("{spec:?}");
        let w = WorkloadSpec::none(SimDuration::from_secs(60));
        assert!(w.is_inert());
        w.apply(&mut spec);
        assert_eq!(format!("{spec:?}"), before);

        // Rate-0 Poisson is inert too.
        let w =
            WorkloadSpec::none(SimDuration::from_secs(60)).poisson(0.0, SimDuration::from_secs(10));
        assert!(w.is_inert());
        w.apply(&mut spec);
        assert_eq!(format!("{spec:?}"), before);
    }

    #[test]
    fn poisson_expansion_is_a_pure_function_of_the_seed() {
        let w = WorkloadSpec::none(SimDuration::from_secs(120))
            .poisson(0.5, SimDuration::from_secs(20));
        let mut a = base_spec(2);
        let mut b = base_spec(2);
        w.apply(&mut a);
        w.apply(&mut b);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "same seed, same expansion"
        );
        let n: usize = a.mcast.iter().map(|m| m.receivers.len()).sum();
        assert!(n > 2, "expected some arrivals, got {}", n - 2);

        let mut c = base_spec(2);
        c.seed = 8;
        w.apply(&mut c);
        assert_ne!(
            format!("{a:?}").replace("seed: 7", "seed: 8"),
            format!("{c:?}"),
            "different seed, different arrivals"
        );
    }

    #[test]
    fn arrivals_are_ordered_and_leave_after_joining() {
        let mut spec = base_spec(1);
        WorkloadSpec::none(SimDuration::from_secs(200))
            .poisson(1.0, SimDuration::from_secs(15))
            .apply(&mut spec);
        let churn = &spec.mcast[0].receivers[1..];
        assert!(!churn.is_empty());
        for w in churn.windows(2) {
            assert!(w[0].join_at <= w[1].join_at, "arrival-time order");
        }
        for r in churn {
            assert!(r.leave_at > r.join_at, "dwell must be positive");
            assert!(r.leave_at < SimTime::MAX);
        }
    }

    #[test]
    fn flash_crowd_multiplies_the_standing_population() {
        let mut spec = base_spec(1);
        spec.mcast[0].receivers[0].cohort = 4; // standing population 4
        WorkloadSpec::none(SimDuration::from_secs(100))
            .flash(FlashCrowd {
                at: SimTime::from_secs(30),
                factor: 10.0,
                mean_dwell: SimDuration::from_secs(20),
                ramp: SimDuration::from_secs(2),
            })
            .apply(&mut spec);
        let churn = &spec.mcast[0].receivers[1..];
        assert_eq!(churn.len(), 40, "10× the standing 4 receivers");
        for r in churn {
            assert!(r.join_at >= SimTime::from_secs(30));
            assert!(r.join_at < SimTime::from_secs(32), "inside the ramp");
        }
    }

    #[test]
    fn zipf_prefers_popular_sessions() {
        let mut spec = base_spec(4);
        WorkloadSpec::none(SimDuration::from_secs(400))
            .poisson(1.0, SimDuration::from_secs(10))
            .zipf(1.2)
            .apply(&mut spec);
        let counts: Vec<usize> = spec.mcast.iter().map(|m| m.receivers.len() - 1).collect();
        let total: usize = counts.iter().sum();
        assert!(total > 50, "expected a few hundred arrivals, got {total}");
        assert!(
            counts[0] > counts[3],
            "session 0 must dominate the tail: {counts:?}"
        );
    }

    #[test]
    fn heterogeneous_attributes_come_from_their_distributions() {
        let mut spec = base_spec(1);
        WorkloadSpec::none(SimDuration::from_secs(200))
            .poisson(0.5, SimDuration::from_secs(10))
            .access_rates(Dist::Uniform {
                lo: 1_000_000.0,
                hi: 5_000_000.0,
            })
            .access_delays_ms(Dist::Uniform { lo: 5.0, hi: 50.0 })
            .apply(&mut spec);
        let churn = &spec.mcast[0].receivers[1..];
        assert!(churn.len() > 10);
        for r in churn {
            assert!(
                (1_000_000..5_000_000).contains(&r.access_bps),
                "{}",
                r.access_bps
            );
            assert!(r.access_delay >= SimDuration::from_millis(5));
            assert!(r.access_delay <= SimDuration::from_millis(50));
        }
        let distinct: std::collections::HashSet<u64> = churn.iter().map(|r| r.access_bps).collect();
        assert!(distinct.len() > 1, "rates must actually vary");
    }

    #[test]
    fn background_mix_and_tcp_land_on_the_spec() {
        let mut spec = base_spec(1);
        WorkloadSpec::none(SimDuration::from_secs(60))
            .extra_tcp(2)
            .background(BackgroundCbr {
                count: 3,
                rate_bps: Dist::Const(50_000.0),
            })
            .apply(&mut spec);
        assert_eq!(spec.tcp, 2);
        assert_eq!(spec.extra_cbr.len(), 3);
        assert!(spec.extra_cbr.iter().all(|c| c.rate_bps == 50_000));
    }
}
