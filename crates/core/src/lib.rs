//! # mcc-core — scenarios, experiments and metrics
//!
//! The public face of the reproduction: everything a downstream user needs
//! to assemble the paper's evaluation (§5) or their own variations.
//!
//! * [`dumbbell`] — the single-bottleneck topology builder (§5.1): any mix
//!   of FLID-DL / FLID-DS sessions, TCP Reno cross traffic and on-off CBR,
//!   with per-receiver join times, access delays and misbehaviour,
//! * [`experiments`] — one function per figure of the paper (1, 7, 8a–8h,
//!   9a/9b), deterministic in their seeds and duration-scalable,
//! * [`metrics`] — series/tables, CSV output and quick ASCII charts,
//! * [`runner`] — runs independent experiments concurrently with
//!   per-experiment deterministic seeds and emits canonical JSON reports
//!   (`results/BENCH_*.json`); serial and parallel runs are byte-identical.
//!
//! ```no_run
//! // Figure 7 in four lines:
//! let result = mcc_core::experiments::attack_experiment(true, 200, 100, 1);
//! for s in &result.series {
//!     println!("{}: mean {:.0} bps", s.label, s.mean());
//! }
//! ```

pub mod dumbbell;
pub mod experiments;
pub mod metrics;
pub mod runner;

pub use dumbbell::{
    CbrSpec, Dumbbell, DumbbellSpec, McastSessionSpec, ReceiverSpec, SessionHandle, TcpHandle,
};
pub use metrics::{ascii_chart, series_csv, write_series_csv, Series, Table};
pub use runner::{
    figure_experiments, run_parallel, run_serial, ExperimentRecord, ExperimentSpec, Json, Report,
};
