//! # mcc-core — scenarios, experiments and metrics
//!
//! The public face of the reproduction: everything a downstream user needs
//! to assemble the paper's evaluation (§5) or their own variations.
//!
//! * [`scenario`] — the declarative layer: [`Variant`] (FLID-DL vs
//!   FLID-DS), unit-suffix literals (`1.mbps()`, `50.secs()`) and the
//!   fluent [`Scenario`] builder,
//! * [`topology`] — the generic topology layer: [`Topology`] shapes
//!   (dumbbell, parking lot, star, balanced tree), [`TopologySpec`] and
//!   the one builder every scenario goes through, with placement-aware
//!   receiver attachment,
//! * [`dumbbell`] — the single-bottleneck topology (§5.1) as a thin
//!   wrapper over [`topology`]: any mix of FLID-DL / FLID-DS sessions,
//!   TCP Reno cross traffic and on-off CBR, with per-receiver join
//!   times, access delays and misbehaviour,
//! * [`workload`] — the event-driven membership workload engine:
//!   synthetic and trace-driven arrival processes (Poisson join/leave,
//!   Zipf session popularity, flash crowds), heterogeneous access
//!   rates/RTTs and background traffic mixes, expanded deterministically
//!   from the scenario seed into ordinary receiver/traffic specs,
//! * [`config`] — [`RunConfig::from_env`] (the one reader of `MCC_QUICK`
//!   / `MCC_THREADS` / `MCC_OUT`) and the [`Params`] bag every
//!   experiment runs under,
//! * [`experiments`] — one function per figure of the paper (1, 7, 8a–8h,
//!   9a/9b), thin wrappers over the builders, deterministic in their seeds,
//! * [`registry`] — every figure and ablation as a registered
//!   [`Experiment`](registry::Experiment) object; the source of truth for
//!   the `figures` CLI in `mcc-bench`,
//! * [`metrics`] — series/tables, CSV output and quick ASCII charts,
//! * [`obs`] — the observability layer's experiment-level face:
//!   `--trace`/`MCC_TRACE` capture lifecycle, canonical JSONL/pcapng
//!   rendering and the `OBS_*.json` metrics registry,
//! * [`runner`] — runs independent experiments concurrently with
//!   per-experiment deterministic seeds and emits canonical JSON reports
//!   (`results/BENCH_*.json`); serial and parallel runs are byte-identical.
//!
//! ```no_run
//! // Figure 7 in five lines:
//! use mcc_core::{Params, Variant};
//! let result =
//!     mcc_core::experiments::attack_experiment(Variant::FlidDs, 200, 100, 1, &Params::default());
//! for s in &result.series {
//!     println!("{}: mean {:.0} bps", s.label, s.mean());
//! }
//! ```

pub mod config;
pub mod dumbbell;
pub mod experiments;
pub mod metrics;
pub mod obs;
pub mod registry;
pub mod runner;
pub mod scenario;
pub mod topology;
pub mod workload;

pub use config::{set_shard_workers, set_trace, shard_workers, trace_spec, Params, RunConfig};
pub use dumbbell::{
    CbrSpec, Dumbbell, DumbbellSpec, McastSessionSpec, ReceiverSpec, SessionHandle, TcpHandle,
};
pub use mcc_obs::TraceSpec;
pub use metrics::{ascii_chart, damage, series_csv, write_series_csv, Damage, Series, Table};
pub use registry::{registry, Experiment, ExperimentDef, ExperimentOutput};
pub use runner::{
    figure_experiments, run_parallel, run_serial, ExperimentRecord, ExperimentSpec, Json, Report,
};
pub use scenario::{Scenario, Units, Variant};
pub use topology::{cohort_receiver, BuiltTopology, Topology, TopologySpec};
pub use workload::{Arrivals, Dist, FlashCrowd, Popularity, WorkloadSpec};
