//! The declarative scenario layer: typed protocol variants, unit-suffix
//! literals and fluent builders over [`crate::dumbbell`].
//!
//! A scenario is *data*, not a function signature. Instead of threading
//! positional `bool`/`u64` arguments through bespoke free functions, the
//! paper's evaluation topologies read like the prose that describes them:
//!
//! ```
//! use mcc_core::scenario::{Scenario, Units, Variant};
//!
//! // Figures 1/7: two multicast + two TCP sessions on a 1 Mbps
//! // bottleneck; the first multicast receiver inflates at t = 50 s.
//! let spec = Scenario::dumbbell(1.mbps())
//!     .seed(1)
//!     .sessions(1, Variant::FlidDs)
//!     .attacker_at(50.secs())
//!     .tcp(2)
//!     .spec();
//! assert_eq!(spec.mcast.len(), 2);
//! ```
//!
//! [`Variant`] replaces every `protected: bool` in the experiment
//! surface: `Variant::FlidDl` is the original (attackable) protocol,
//! `Variant::FlidDs` the DELTA + SIGMA hardened one.

use crate::dumbbell::{CbrSpec, Dumbbell, DumbbellSpec, McastSessionSpec, ReceiverSpec};
use crate::topology::{BuiltTopology, Topology, TopologySpec};
use mcc_attack::AttackPlan;
use mcc_flid::Behavior;
use mcc_simcore::{SimDuration, SimTime};

/// Which congestion-control protocol (and defence level) a multicast
/// session runs — the *defense* axis of the robustness matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// FLID-DL: the original protocol, vulnerable to inflated
    /// subscription (paper §2).
    FlidDl,
    /// FLID-DS: hardened with DELTA key distribution and SIGMA edge
    /// routers (paper §3).
    FlidDs,
    /// FLID-DS with the interface-specific collusion guard installed for
    /// this session's groups (paper §4.2).
    FlidDsGuard,
    /// The replicated (destination-set-grouping) protocol protected by
    /// the Figure-5 DELTA instantiation (paper §3.1.2).
    Replicated,
    /// The RLM-style loss-threshold protocol protected by Shamir-share
    /// key distribution (paper §3.1.2).
    Threshold,
}

impl Variant {
    /// Whether the edge router enforces subscriptions (SIGMA installed).
    pub fn protected(self) -> bool {
        !matches!(self, Variant::FlidDl)
    }

    /// The plot/matrix label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::FlidDl => "FLID-DL",
            Variant::FlidDs => "FLID-DS",
            Variant::FlidDsGuard => "FLID-DS+guard",
            Variant::Replicated => "Replicated",
            Variant::Threshold => "Threshold",
        }
    }

    /// The two paper variants, DL first — the order every side-by-side
    /// figure uses.
    pub const BOTH: [Variant; 2] = [Variant::FlidDl, Variant::FlidDs];

    /// The defense column set of the robustness matrix: unprotected
    /// FLID-DL, then every hardened variant.
    pub const DEFENSES: [Variant; 5] = [
        Variant::FlidDl,
        Variant::FlidDs,
        Variant::FlidDsGuard,
        Variant::Replicated,
        Variant::Threshold,
    ];
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Unit suffixes for scenario literals: `1.mbps()`, `250.kbps()`,
/// `50.secs()`, `20.ms()`.
pub trait Units {
    /// Megabit/s as bit/s.
    fn mbps(self) -> u64;
    /// Kilobit/s as bit/s.
    fn kbps(self) -> u64;
    /// Seconds as a [`SimTime`] instant.
    fn secs(self) -> SimTime;
    /// Seconds as a [`SimDuration`] span.
    fn secs_dur(self) -> SimDuration;
    /// Milliseconds as a [`SimDuration`].
    fn ms(self) -> SimDuration;
}

impl Units for u64 {
    fn mbps(self) -> u64 {
        self * 1_000_000
    }
    fn kbps(self) -> u64 {
        self * 1_000
    }
    fn secs(self) -> SimTime {
        SimTime::from_secs(self)
    }
    fn secs_dur(self) -> SimDuration {
        SimDuration::from_secs(self)
    }
    fn ms(self) -> SimDuration {
        SimDuration::from_millis(self)
    }
}

// ---------------------------------------------------------------------------
// Fluent builders on the spec types
// ---------------------------------------------------------------------------

impl ReceiverSpec {
    /// An honest receiver joining at t = 0 with the paper's 10 ms access
    /// link.
    pub fn new() -> ReceiverSpec {
        ReceiverSpec::default()
    }

    /// Join the session at `at`.
    pub fn join_at(mut self, at: SimTime) -> ReceiverSpec {
        self.join_at = at;
        self
    }

    /// Override the access-link propagation delay (the RTT experiment).
    pub fn access_delay(mut self, delay: SimDuration) -> ReceiverSpec {
        self.access_delay = delay;
        self
    }

    /// Leave the session at `at`, dropping every subscribed layer (the
    /// workload engine's mid-run departure).
    pub fn leave_at(mut self, at: SimTime) -> ReceiverSpec {
        self.leave_at = at;
        self
    }

    /// Override the access-link capacity (heterogeneous-rate workloads;
    /// the paper default is 10 Mbps).
    pub fn access_bps(mut self, bps: u64) -> ReceiverSpec {
        self.access_bps = bps;
        self
    }

    /// Misbehave: run `plan`'s adversary strategy (the general form; the
    /// two legacy shorthands below compile down to it).
    pub fn adversary(mut self, plan: AttackPlan) -> ReceiverSpec {
        self.adversary = plan;
        self
    }

    /// Misbehave: inflate the subscription to every group at `at`.
    pub fn inflate_at(self, at: SimTime) -> ReceiverSpec {
        self.adversary(Behavior::Inflate { at }.plan())
    }

    /// Misbehave: stop obeying decrease rules at `at`.
    pub fn ignore_decrease_at(self, at: SimTime) -> ReceiverSpec {
        self.adversary(Behavior::IgnoreDecrease { at }.plan())
    }

    /// Represent `n` statistically identical receivers behind one edge
    /// interface with a single cohort agent (FLID variants only): state
    /// and events stay O(distinct layer-sets) instead of O(n), metrics
    /// are count-weighted and exact for synchronized slots.
    pub fn cohort(mut self, n: u64) -> ReceiverSpec {
        assert!(n >= 1, "cohort multiplier must be at least 1");
        self.cohort = n;
        self
    }
}

impl McastSessionSpec {
    /// An empty session of `variant` with the paper's 10 groups; add
    /// receivers with [`McastSessionSpec::receiver`].
    pub fn new(variant: Variant) -> McastSessionSpec {
        McastSessionSpec {
            variant,
            n_groups: 10,
            receivers: Vec::new(),
        }
    }

    /// Override the group count.
    pub fn groups(mut self, n: u32) -> McastSessionSpec {
        self.n_groups = n;
        self
    }

    /// Add one receiver.
    pub fn receiver(mut self, r: ReceiverSpec) -> McastSessionSpec {
        self.receivers.push(r);
        self
    }

    /// Add many receivers.
    pub fn with_receivers(
        mut self,
        rs: impl IntoIterator<Item = ReceiverSpec>,
    ) -> McastSessionSpec {
        self.receivers.extend(rs);
        self
    }
}

impl CbrSpec {
    /// A steady CBR of `rate_bps` running for the whole experiment.
    pub fn steady(rate_bps: u64) -> CbrSpec {
        CbrSpec {
            rate_bps,
            on_off: None,
            start: SimTime::ZERO,
            stop: SimTime::MAX,
        }
    }

    /// Restrict the source to the `[start, stop]` window (the Figure-8e
    /// burst).
    pub fn window(mut self, start: SimTime, stop: SimTime) -> CbrSpec {
        self.start = start;
        self.stop = stop;
        self
    }

    /// Chop the source into `(on, off)` periods (the Figure-8d
    /// background).
    pub fn on_off(mut self, on: SimDuration, off: SimDuration) -> CbrSpec {
        self.on_off = Some((on, off));
        self
    }
}

// ---------------------------------------------------------------------------
// Scenario: the top-level builder
// ---------------------------------------------------------------------------

/// Fluent builder for the paper's evaluation scenarios, over any
/// [`Topology`].
///
/// Wraps a [`TopologySpec`] and remembers the last session variant so
/// follow-up calls like [`Scenario::attacker_at`] don't repeat it.
#[derive(Clone, Debug)]
pub struct Scenario {
    spec: TopologySpec,
    variant: Variant,
}

impl Scenario {
    /// A scenario over an arbitrary [`Topology`] with the §5.1 link
    /// defaults (20 ms bottlenecks, 10 ms side links, 2×BDP buffers).
    pub fn topology(topology: Topology, bottleneck_bps: u64) -> Scenario {
        Scenario {
            spec: TopologySpec::new(topology, 0, bottleneck_bps),
            variant: Variant::FlidDl,
        }
    }

    /// A dumbbell with the given bottleneck capacity and the §5.1
    /// defaults (20 ms bottleneck, 10 ms side links, 2×BDP buffers).
    pub fn dumbbell(bottleneck_bps: u64) -> Scenario {
        Scenario::topology(Topology::Dumbbell, bottleneck_bps)
    }

    /// A parking lot of `bottlenecks` chained bottleneck links.
    pub fn parking_lot(bottlenecks: usize, bottleneck_bps: u64) -> Scenario {
        Scenario::topology(
            Topology::ParkingLot {
                bottlenecks,
                per_hop_cbr: None,
            },
            bottleneck_bps,
        )
    }

    /// A star of `arms` bottleneck spokes around one hub.
    pub fn star(arms: usize, bottleneck_bps: u64) -> Scenario {
        Scenario::topology(Topology::Star { arms }, bottleneck_bps)
    }

    /// A balanced `fanout`-ary multicast tree of the given `depth`;
    /// receivers attach at the leaves.
    pub fn balanced_tree(depth: u32, fanout: u32, bottleneck_bps: u64) -> Scenario {
        Scenario::topology(Topology::BalancedTree { depth, fanout }, bottleneck_bps)
    }

    /// Parking lot only: run a CBR of `rate_bps` across each hop
    /// (entering at the hop's upstream router, leaving right after it).
    pub fn per_hop_cbr(mut self, rate_bps: u64) -> Scenario {
        match &mut self.spec.topology {
            Topology::ParkingLot { per_hop_cbr, .. } => *per_hop_cbr = Some(rate_bps),
            other => panic!("per_hop_cbr only applies to a parking lot, not {other:?}"),
        }
        self
    }

    /// The scenario seed (fully determines the run).
    pub fn seed(mut self, seed: u64) -> Scenario {
        self.spec.seed = seed;
        self
    }

    /// Override the bottleneck propagation delay.
    pub fn bottleneck_delay(mut self, delay: SimDuration) -> Scenario {
        self.spec.bottleneck_delay = delay;
        self
    }

    /// Add `n` honest single-receiver sessions of `variant`, which also
    /// becomes the builder's default variant.
    pub fn sessions(mut self, n: u32, variant: Variant) -> Scenario {
        self.variant = variant;
        self.spec
            .mcast
            .extend((0..n).map(|_| McastSessionSpec::honest(variant, 1)));
        self
    }

    /// Add one fully specified session (also updates the default
    /// variant).
    pub fn session(mut self, session: McastSessionSpec) -> Scenario {
        self.variant = session.variant;
        self.spec.mcast.push(session);
        self
    }

    /// Prepend a session whose single receiver inflates its subscription
    /// at `at` — the Figure-1/7 attacker, always session 0 so result
    /// indexing is stable.
    pub fn attacker_at(mut self, at: SimTime) -> Scenario {
        let attacker =
            McastSessionSpec::new(self.variant).receiver(ReceiverSpec::new().inflate_at(at));
        self.spec.mcast.insert(0, attacker);
        self
    }

    /// Add `n` TCP Reno cross-traffic sessions.
    pub fn tcp(mut self, n: usize) -> Scenario {
        self.spec.tcp = n;
        self
    }

    /// Add a CBR background.
    pub fn cbr(mut self, cbr: CbrSpec) -> Scenario {
        self.spec.cbr = Some(cbr);
        self
    }

    /// Overlay an event-driven membership workload (see
    /// [`crate::workload`]): churn, flash crowds, heterogeneous access
    /// links and background mixes, expanded deterministically from the
    /// scenario seed at build time.
    pub fn workload(mut self, w: crate::workload::WorkloadSpec) -> Scenario {
        self.spec.workload = Some(w);
        self
    }

    /// The assembled [`DumbbellSpec`] (the dumbbell view; use
    /// [`Scenario::topology_spec`] to keep a non-dumbbell shape).
    pub fn spec(self) -> DumbbellSpec {
        self.spec.into()
    }

    /// The assembled generic [`TopologySpec`].
    pub fn topology_spec(self) -> TopologySpec {
        self.spec
    }

    /// Build the simulation behind the classic single-edge [`Dumbbell`]
    /// handle (`edge`/`bottleneck` are the first attachment router and
    /// bottleneck link; use [`Scenario::build_net`] for the full
    /// multi-router handles).
    pub fn build(self) -> Dumbbell {
        Dumbbell::from_built(self.spec.build())
    }

    /// Build the simulation with the full [`BuiltTopology`] handles.
    pub fn build_net(self) -> BuiltTopology {
        self.spec.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_read_like_the_paper() {
        assert_eq!(1.mbps(), 1_000_000);
        assert_eq!(250.kbps(), 250_000);
        assert_eq!(50.secs(), SimTime::from_secs(50));
        assert_eq!(20.ms(), SimDuration::from_millis(20));
    }

    #[test]
    fn variant_replaces_the_protected_bool() {
        assert!(!Variant::FlidDl.protected());
        assert!(Variant::FlidDs.protected());
        assert_eq!(Variant::FlidDs.label(), "FLID-DS");
        assert_eq!(Variant::BOTH[0], Variant::FlidDl);
    }

    #[test]
    fn builder_assembles_the_figure1_topology() {
        let spec = Scenario::dumbbell(1.mbps())
            .seed(1)
            .sessions(1, Variant::FlidDl)
            .attacker_at(100.secs())
            .tcp(2)
            .spec();
        assert_eq!(spec.seed, 1);
        assert_eq!(spec.bottleneck_bps, 1_000_000);
        assert_eq!(spec.mcast.len(), 2);
        assert_eq!(spec.tcp, 2);
        // The attacker is session 0 and inherits the variant.
        assert_eq!(spec.mcast[0].variant, Variant::FlidDl);
        assert_eq!(
            spec.mcast[0].receivers[0].adversary.label(),
            "inflate+key_guess(10)@100s"
        );
        // The honest session is untouched.
        assert_eq!(spec.mcast[1].receivers[0].adversary.label(), "honest");
    }

    #[test]
    fn session_and_receiver_builders_cover_the_sweeps() {
        let s = McastSessionSpec::new(Variant::FlidDs)
            .groups(4)
            .receiver(ReceiverSpec::new().join_at(10.secs()))
            .receiver(ReceiverSpec::new().access_delay(95.ms()));
        assert_eq!(s.n_groups, 4);
        assert_eq!(s.receivers.len(), 2);
        assert_eq!(s.receivers[0].join_at, SimTime::from_secs(10));
        assert_eq!(s.receivers[1].access_delay, SimDuration::from_millis(95));

        let c = CbrSpec::steady(800_000)
            .window(45.secs(), 75.secs())
            .on_off(5.secs_dur(), 5.secs_dur());
        assert_eq!(c.rate_bps, 800_000);
        assert_eq!(c.start, SimTime::from_secs(45));
        assert!(c.on_off.is_some());
    }
}
