//! The strategy library: every adversary of the paper's threat model as a
//! composable [`Adversary`] implementation.
//!
//! Primitive strategies — [`InflateTo`], [`IgnoreDecrease`], [`KeyGuess`],
//! [`Colluders`], [`JoinLeaveFlap`] — are active from the moment the
//! receiver starts; the [`Timed`] wrapper delays one, [`All`] composes
//! several, and [`staggered`] fans a fleet of onsets across receivers.

use crate::{Adversary, AttackAction, AttackEnv};
use mcc_delta::Key;
use mcc_simcore::{OnOffGrid, SimDuration, SimTime};
use std::collections::{BTreeMap, HashSet};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// The well-behaved receiver: every hook is a no-op.
#[derive(Clone, Copy, Debug, Default)]
pub struct Honest;

impl Adversary for Honest {
    fn label(&self) -> String {
        "honest".into()
    }
    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(*self)
    }
    fn parallel_safe(&self) -> bool {
        true
    }
    fn is_inert(&self, _after: SimTime) -> bool {
        true
    }
    fn dormant_until(&self) -> Option<SimTime> {
        Some(SimTime::MAX)
    }
}

/// Inflated subscription (paper §2): grab every group up to `layer` and
/// keep claiming that level. Under SIGMA the strategy also hammers raw
/// IGMP joins every slot — which the router ignores, making the attack
/// visible but useless (Figure 7).
#[derive(Clone, Copy, Debug)]
pub struct InflateTo {
    /// Highest 1-based group to grab; `u32::MAX` = everything.
    pub layer: u32,
}

impl InflateTo {
    /// Inflate to the maximal subscription (the Figure-1 attacker).
    pub fn all() -> InflateTo {
        InflateTo { layer: u32::MAX }
    }
}

impl Adversary for InflateTo {
    fn label(&self) -> String {
        if self.layer == u32::MAX {
            "inflate".into()
        } else {
            format!("inflate({})", self.layer)
        }
    }
    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(*self)
    }
    fn on_activation(&mut self, _env: &AttackEnv) -> Vec<AttackAction> {
        vec![AttackAction::Inflate { layer: self.layer }]
    }
    fn on_slot(&mut self, env: &AttackEnv) -> Vec<AttackAction> {
        if env.protected {
            // SIGMA swallows raw joins; keep hammering anyway (§4.2).
            vec![AttackAction::RawJoins { layer: self.layer }]
        } else {
            // Classic IGMP: everything was joined at activation.
            Vec::new()
        }
    }
    // Deliberately NO congestion-signal veto: under classic IGMP the
    // inflated receiver already ignores everything (it grabbed the groups
    // and never leaves), while under SIGMA the rational attacker keeps
    // its honest machinery obeying forced decreases — that is all the
    // bandwidth its keys can open (the paper's F1 stays near fair share).
    fn subscription_override(&self, _env: &AttackEnv, honest_level: u32) -> u32 {
        honest_level.max(self.layer)
    }
    fn parallel_safe(&self) -> bool {
        true
    }
}

/// Refuse to lower the subscription when congested (paper §2's second
/// misbehaviour): the congestion-signal hook vetoes every decrease.
#[derive(Clone, Copy, Debug, Default)]
pub struct IgnoreDecrease;

impl Adversary for IgnoreDecrease {
    fn label(&self) -> String {
        "ignore_decrease".into()
    }
    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(*self)
    }
    fn on_congestion_signal(&mut self, _env: &AttackEnv) -> bool {
        true
    }
    fn parallel_safe(&self) -> bool {
        true
    }
}

/// The §4.2 guessing attack: submit `rate` random keys per group per slot,
/// hoping one opens a group. Success probability is `rate/2^64` per slot;
/// the distinct-key tally at the router is the countermeasure.
#[derive(Clone, Copy, Debug)]
pub struct KeyGuess {
    /// Guessed keys per group per slot.
    pub rate: u32,
}

impl Adversary for KeyGuess {
    fn label(&self) -> String {
        format!("key_guess({})", self.rate)
    }
    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(*self)
    }
    fn on_slot(&mut self, _env: &AttackEnv) -> Vec<AttackAction> {
        vec![AttackAction::GuessKeys {
            per_group: self.rate,
            layer: u32::MAX,
        }]
    }
}

/// Join/leave churn: alternate between a full inflation and a drop back to
/// the minimal level every `period`, abusing graft/prune latency and
/// SIGMA's keyless grace windows. The attack is a thin wrapper over the
/// workload layer's pulse-churn primitive: [`OnOffGrid`] owns the grid
/// arithmetic and the phase, this strategy only maps the two phases onto
/// attack actions.
#[derive(Clone, Copy, Debug)]
pub struct JoinLeaveFlap {
    grid: OnOffGrid,
}

impl JoinLeaveFlap {
    /// Flap with the given half-cycle.
    pub fn new(period: SimDuration) -> JoinLeaveFlap {
        assert!(!period.is_zero(), "flap period");
        JoinLeaveFlap {
            grid: OnOffGrid::new(period),
        }
    }
}

impl Adversary for JoinLeaveFlap {
    fn label(&self) -> String {
        format!("flap({}ms)", self.grid.period().as_nanos() / 1_000_000)
    }
    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(*self)
    }
    fn next_activation(&self, after: SimTime) -> Option<SimTime> {
        Some(self.grid.next_after(after))
    }
    fn on_activation(&mut self, env: &AttackEnv) -> Vec<AttackAction> {
        // Self-gate to the flap grid: under a composite ([`All`]) the
        // receiver fires activations at the *union* of the members'
        // schedules, and a toggle at a sibling's instant would corrupt
        // the phase.
        if !self.grid.on_grid(env.now) {
            return Vec::new();
        }
        if self.grid.toggle() {
            vec![AttackAction::Inflate { layer: u32::MAX }]
        } else {
            vec![AttackAction::LeaveHigh]
        }
    }
    fn on_congestion_signal(&mut self, _env: &AttackEnv) -> bool {
        // While flapped up, congestion signals are ignored wholesale.
        self.grid.is_up()
    }
    fn parallel_safe(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Collusion
// ---------------------------------------------------------------------------

/// The out-of-band channel of a colluding clique: reconstructed per-slot
/// keys published by capable members and consumed by freeloaders (paper
/// §4.2, the attack the interface-specific [`CollusionGuard`] defeats).
///
/// Shared state is deterministic: the simulator is single-threaded, so
/// publish/consume order follows event order exactly.
///
/// [`CollusionGuard`]: mcc_sigma::CollusionGuard
#[derive(Clone, Debug, Default)]
pub struct CollusionSet(Arc<Mutex<Pool>>);

#[derive(Debug, Default)]
struct Pool {
    members: u32,
    /// `sub_slot → (publishing member, 1-based group, key)`.
    keys: BTreeMap<u64, Vec<(u32, u32, Key)>>,
}

impl CollusionSet {
    /// An empty clique.
    pub fn new() -> CollusionSet {
        CollusionSet::default()
    }

    fn register(&self) -> u32 {
        let mut pool = self.0.lock().expect("collusion pool");
        pool.members += 1;
        pool.members
    }

    fn publish(&self, member: u32, sub_slot: u64, pairs: &[(u32, Key)]) {
        let mut pool = self.0.lock().expect("collusion pool");
        let entry = pool.keys.entry(sub_slot).or_default();
        for &(g, k) in pairs {
            if !entry.iter().any(|&(_, eg, ek)| eg == g && ek == k) {
                entry.push((member, g, k));
            }
        }
    }

    /// Keys published by *other* members for `sub_slot`.
    fn keys_from_others(&self, member: u32, sub_slot: u64) -> Vec<(u32, Key)> {
        let pool = self.0.lock().expect("collusion pool");
        pool.keys
            .get(&sub_slot)
            .map(|entries| {
                entries
                    .iter()
                    .filter(|&&(m, _, _)| m != member)
                    .map(|&(_, g, k)| (g, k))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn gc(&self, min_slot: u64) {
        let mut pool = self.0.lock().expect("collusion pool");
        pool.keys.retain(|&s, _| s >= min_slot);
    }

    /// Registered member count (diagnostics).
    pub fn members(&self) -> u32 {
        self.0.lock().expect("collusion pool").members
    }
}

/// A member of a colluding clique: publishes every key tuple its honest
/// machinery reconstructs and submits fresh keys published by the other
/// members — so a freeloader inherits the most capable member's
/// subscription without ever earning it. Plain SIGMA accepts the smuggled
/// keys (the key is the credential); the interface-specific collusion
/// guard rejects them.
#[derive(Debug)]
pub struct Colluders {
    set: CollusionSet,
    member: u32,
    submitted: HashSet<(u64, u32)>,
}

impl Colluders {
    /// Join the clique behind `set`.
    pub fn new(set: CollusionSet) -> Colluders {
        let member = set.register();
        Colluders {
            set,
            member,
            submitted: HashSet::new(),
        }
    }
}

impl Adversary for Colluders {
    fn label(&self) -> String {
        "colluders".into()
    }
    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(Colluders::new(self.set.clone()))
    }
    fn on_slot(&mut self, env: &AttackEnv) -> Vec<AttackAction> {
        self.set.gc(env.slot.saturating_sub(2));
        let mut actions = Vec::new();
        for sub_slot in [env.slot + 1, env.slot + 2] {
            let pairs: Vec<(u32, Key)> = self
                .set
                .keys_from_others(self.member, sub_slot)
                .into_iter()
                .filter(|&(g, _)| self.submitted.insert((sub_slot, g)))
                .collect();
            if !pairs.is_empty() {
                actions.push(AttackAction::SubmitKeys {
                    slot: sub_slot,
                    pairs,
                });
            }
        }
        actions
    }
    fn on_key_packet(&mut self, _env: &AttackEnv, sub_slot: u64, keys: &[(u32, Key)]) {
        self.set.publish(self.member, sub_slot, keys);
    }
}

// ---------------------------------------------------------------------------
// Schedulers
// ---------------------------------------------------------------------------

/// Delay a strategy until `at`: before that instant every hook is inert,
/// afterwards the inner strategy runs unchanged. `Timed` is how scenario
/// onsets are expressed (`Timed::at(50.secs(), InflateTo::all())`).
#[derive(Debug)]
pub struct Timed {
    at: SimTime,
    inner: Box<dyn Adversary>,
}

impl Timed {
    /// Activate `inner` at `at`.
    pub fn at(at: SimTime, inner: impl Adversary + 'static) -> Timed {
        Timed {
            at,
            inner: Box::new(inner),
        }
    }

    /// As [`Timed::at`], for an already-boxed strategy.
    pub fn boxed(at: SimTime, inner: Box<dyn Adversary>) -> Timed {
        Timed { at, inner }
    }

    fn active(&self, env: &AttackEnv) -> bool {
        env.now >= self.at
    }
}

impl Adversary for Timed {
    fn label(&self) -> String {
        format!("{}@{}s", self.inner.label(), self.at.as_secs_f64())
    }
    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(Timed {
            at: self.at,
            inner: self.inner.clone_box(),
        })
    }
    fn next_activation(&self, after: SimTime) -> Option<SimTime> {
        if after < self.at {
            Some(self.at)
        } else {
            self.inner.next_activation(after)
        }
    }
    fn on_activation(&mut self, env: &AttackEnv) -> Vec<AttackAction> {
        if self.active(env) {
            self.inner.on_activation(env)
        } else {
            Vec::new()
        }
    }
    fn on_slot(&mut self, env: &AttackEnv) -> Vec<AttackAction> {
        if self.active(env) {
            self.inner.on_slot(env)
        } else {
            Vec::new()
        }
    }
    fn on_key_packet(&mut self, env: &AttackEnv, sub_slot: u64, keys: &[(u32, Key)]) {
        if self.active(env) {
            self.inner.on_key_packet(env, sub_slot, keys);
        }
    }
    fn on_congestion_signal(&mut self, env: &AttackEnv) -> bool {
        self.active(env) && self.inner.on_congestion_signal(env)
    }
    fn subscription_override(&self, env: &AttackEnv, honest_level: u32) -> u32 {
        if self.active(env) {
            self.inner.subscription_override(env, honest_level)
        } else {
            honest_level
        }
    }
    fn parallel_safe(&self) -> bool {
        self.inner.parallel_safe()
    }
    fn is_inert(&self, after: SimTime) -> bool {
        // Before the onset the wrapper still has its activation ahead of
        // it; afterwards the question is the inner strategy's alone.
        after >= self.at && self.inner.is_inert(after)
    }
    fn dormant_until(&self) -> Option<SimTime> {
        // Every hook above gates on `env.now >= at`, so the wrapper is
        // provably honest-equivalent on `[start, at)` whatever it wraps.
        Some(self.at)
    }
}

/// Run several strategies simultaneously: actions concatenate in order,
/// a congestion signal is suppressed if *any* member suppresses it, and
/// subscription overrides fold left to right.
#[derive(Debug)]
pub struct All(Vec<Box<dyn Adversary>>);

impl All {
    /// Compose the given strategies.
    pub fn of(strategies: Vec<Box<dyn Adversary>>) -> All {
        All(strategies)
    }
}

impl Adversary for All {
    fn label(&self) -> String {
        self.0
            .iter()
            .map(|a| a.label())
            .collect::<Vec<_>>()
            .join("+")
    }
    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(All(self.0.iter().map(|a| a.clone_box()).collect()))
    }
    fn next_activation(&self, after: SimTime) -> Option<SimTime> {
        self.0.iter().filter_map(|a| a.next_activation(after)).min()
    }
    fn on_activation(&mut self, env: &AttackEnv) -> Vec<AttackAction> {
        self.0
            .iter_mut()
            .flat_map(|a| a.on_activation(env))
            .collect()
    }
    fn on_slot(&mut self, env: &AttackEnv) -> Vec<AttackAction> {
        self.0.iter_mut().flat_map(|a| a.on_slot(env)).collect()
    }
    fn on_key_packet(&mut self, env: &AttackEnv, sub_slot: u64, keys: &[(u32, Key)]) {
        for a in &mut self.0 {
            a.on_key_packet(env, sub_slot, keys);
        }
    }
    fn on_congestion_signal(&mut self, env: &AttackEnv) -> bool {
        // Every member sees the signal (stateful strategies may track it);
        // any one of them may veto the decrease.
        let mut veto = false;
        for a in &mut self.0 {
            veto |= a.on_congestion_signal(env);
        }
        veto
    }
    fn subscription_override(&self, env: &AttackEnv, honest_level: u32) -> u32 {
        self.0
            .iter()
            .fold(honest_level, |lvl, a| a.subscription_override(env, lvl))
    }
    fn parallel_safe(&self) -> bool {
        self.0.iter().all(|a| a.parallel_safe())
    }
    fn is_inert(&self, after: SimTime) -> bool {
        self.0.iter().all(|a| a.is_inert(after))
    }
    fn dormant_until(&self) -> Option<SimTime> {
        // Dormant only while *every* member is: the earliest onset wins,
        // and a single member that can't prove dormancy poisons the claim.
        self.0
            .iter()
            .map(|a| a.dormant_until())
            .try_fold(SimTime::MAX, |acc, d| d.map(|t| acc.min(t)))
    }
}

/// Stagger a fleet: plan `i` activates at `start + i·gap`. The scheduler
/// counterpart of a botnet joining in waves.
pub fn staggered(
    start: SimTime,
    gap: SimDuration,
    strategies: Vec<Box<dyn Adversary>>,
) -> Vec<crate::AttackPlan> {
    strategies
        .into_iter()
        .enumerate()
        .map(|(i, inner)| {
            let at = start + SimDuration::from_nanos(gap.as_nanos() * i as u64);
            crate::AttackPlan::new(Timed::boxed(at, inner))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_at(now: SimTime, slot: u64) -> AttackEnv {
        AttackEnv {
            now,
            slot,
            n_groups: 10,
            level: 3,
            protected: true,
        }
    }

    #[test]
    fn timed_gates_every_hook_until_onset() {
        let mut t = Timed::at(SimTime::from_secs(10), InflateTo::all());
        let before = env_at(SimTime::from_secs(5), 20);
        let after = env_at(SimTime::from_secs(15), 60);
        assert!(t.on_activation(&before).is_empty());
        assert!(t.on_slot(&before).is_empty());
        assert!(!t.on_congestion_signal(&before));
        assert_eq!(t.subscription_override(&before, 3), 3);
        assert_eq!(
            t.on_activation(&after),
            vec![AttackAction::Inflate { layer: u32::MAX }]
        );
        assert_eq!(
            t.on_slot(&after),
            vec![AttackAction::RawJoins { layer: u32::MAX }]
        );
        assert_eq!(t.subscription_override(&after, 3), u32::MAX);
        let mut gated_veto = Timed::at(SimTime::from_secs(10), IgnoreDecrease);
        assert!(!gated_veto.on_congestion_signal(&before));
        assert!(gated_veto.on_congestion_signal(&after));
        // The activation schedule points at the onset, then stops.
        assert_eq!(
            t.next_activation(SimTime::ZERO),
            Some(SimTime::from_secs(10))
        );
        assert_eq!(t.next_activation(SimTime::from_secs(10)), None);
    }

    #[test]
    fn flap_alternates_inflate_and_leave_on_a_grid() {
        let mut f = JoinLeaveFlap::new(SimDuration::from_secs(4));
        assert_eq!(
            f.next_activation(SimTime::from_secs(1)),
            Some(SimTime::from_secs(4))
        );
        assert_eq!(
            f.next_activation(SimTime::from_secs(4)),
            Some(SimTime::from_secs(8))
        );
        let env = env_at(SimTime::from_secs(4), 16);
        assert_eq!(
            f.on_activation(&env),
            vec![AttackAction::Inflate { layer: u32::MAX }]
        );
        assert!(f.on_congestion_signal(&env), "up phase ignores signals");
        assert_eq!(f.on_activation(&env), vec![AttackAction::LeaveHigh]);
        assert!(!f.on_congestion_signal(&env), "down phase obeys them");
    }

    #[test]
    fn colluders_share_keys_but_never_their_own() {
        let set = CollusionSet::new();
        let mut feeder = Colluders::new(set.clone());
        let mut freeloader = Colluders::new(set.clone());
        assert_eq!(set.members(), 2);
        let env = env_at(SimTime::from_secs(3), 12);
        feeder.on_key_packet(&env, 14, &[(1, Key(11)), (2, Key(22))]);

        // The freeloader picks up the feeder's keys exactly once…
        let actions = freeloader.on_slot(&env);
        assert_eq!(
            actions,
            vec![AttackAction::SubmitKeys {
                slot: 14,
                pairs: vec![(1, Key(11)), (2, Key(22))],
            }]
        );
        assert!(freeloader.on_slot(&env).is_empty(), "deduplicated");
        // …while the feeder sees nothing new (its own keys are filtered).
        assert!(feeder.on_slot(&env).is_empty());
    }

    #[test]
    fn all_composes_actions_and_vetoes() {
        let mut a = All::of(vec![
            Box::new(InflateTo::all()),
            Box::new(KeyGuess { rate: 10 }),
            Box::new(IgnoreDecrease),
        ]);
        let env = env_at(SimTime::from_secs(1), 4);
        assert_eq!(
            a.on_slot(&env),
            vec![
                AttackAction::RawJoins { layer: u32::MAX },
                AttackAction::GuessKeys {
                    per_group: 10,
                    layer: u32::MAX
                },
            ]
        );
        assert!(a.on_congestion_signal(&env), "any member may veto");
        assert_eq!(a.label(), "inflate+key_guess(10)+ignore_decrease");
    }

    #[test]
    fn inertness_and_dormancy_claims_are_conservative() {
        assert!(Honest.is_inert(SimTime::ZERO));
        assert_eq!(Honest.dormant_until(), Some(SimTime::MAX));
        let t = Timed::at(SimTime::from_secs(10), Honest);
        assert_eq!(t.dormant_until(), Some(SimTime::from_secs(10)));
        assert!(!t.is_inert(SimTime::from_secs(5)), "activation still ahead");
        assert!(t.is_inert(SimTime::from_secs(10)), "burnt out after onset");
        let live = Timed::at(SimTime::from_secs(10), InflateTo::all());
        assert!(
            !live.is_inert(SimTime::from_secs(20)),
            "inflation never burns out"
        );
        let both = All::of(vec![
            Box::new(Timed::at(SimTime::from_secs(4), Honest)),
            Box::new(Timed::at(SimTime::from_secs(9), Honest)),
        ]);
        assert_eq!(both.dormant_until(), Some(SimTime::from_secs(4)));
        assert!(both.is_inert(SimTime::from_secs(9)));
        assert!(!both.is_inert(SimTime::from_secs(5)));
        let poisoned = All::of(vec![
            Box::new(IgnoreDecrease),
            Box::new(Timed::at(SimTime::from_secs(9), Honest)),
        ]);
        assert_eq!(
            poisoned.dormant_until(),
            None,
            "an immediately-active member denies dormancy"
        );
        assert!(KeyGuess { rate: 1 }.dormant_until().is_none());
    }

    #[test]
    fn staggered_fans_onsets_across_the_fleet() {
        let plans = staggered(
            SimTime::from_secs(10),
            SimDuration::from_secs(5),
            vec![Box::new(InflateTo::all()), Box::new(IgnoreDecrease)],
        );
        assert_eq!(plans.len(), 2);
        assert_eq!(
            plans[0].build().next_activation(SimTime::ZERO),
            Some(SimTime::from_secs(10))
        );
        assert_eq!(
            plans[1].build().next_activation(SimTime::ZERO),
            Some(SimTime::from_secs(15))
        );
    }
}
