//! # mcc-attack — the pluggable adversary subsystem
//!
//! The paper's contribution is robustness against receivers that inflate
//! their subscription (§2), guess keys (§4.2), collude across interfaces
//! (§4.2) or abuse join/leave latency. Before this crate those adversaries
//! were scattered ad-hoc flags: `mcc_flid::Behavior` held inflate and
//! ignore-decrease, the guessing attacker lived inside the receiver, and
//! collusion existed only as a router test. This crate makes *attacker
//! composition* a first-class, enumerable axis:
//!
//! * [`Adversary`] — the trait every attack strategy implements, with four
//!   protocol hooks (per-slot, key-packet, congestion-signal, subscription
//!   override) plus a timer-driven activation schedule,
//! * [`AttackAction`] — the primitive misbehaviours a protocol receiver
//!   knows how to execute (raw joins, guessed keys, inflation, churn,
//!   smuggled-key submission), so one strategy library drives *every*
//!   protocol variant (FLID, replicated, threshold),
//! * [`strategies`] — the library: [`InflateTo`], [`IgnoreDecrease`],
//!   [`KeyGuess`], [`Colluders`] (key sharing through a [`CollusionSet`]),
//!   [`JoinLeaveFlap`], and the composable [`Timed`] / [`All`] /
//!   [`staggered`] schedulers,
//! * [`AttackPlan`] — a cloneable handle used by scenario specs
//!   (`mcc_core::dumbbell::ReceiverSpec::adversary`).
//!
//! The legacy `mcc_flid::Behavior` enum survives as a thin alias whose
//! variants compile down to plans from this library; the ported plans
//! reproduce the historical Figure 1/7 runs byte for byte.

pub mod strategies;

pub use strategies::{
    staggered, All, Colluders, CollusionSet, Honest, IgnoreDecrease, InflateTo, JoinLeaveFlap,
    KeyGuess, Timed,
};

use mcc_delta::Key;
use mcc_simcore::SimTime;

/// Snapshot of the attacking receiver's world, handed to every hook.
#[derive(Clone, Copy, Debug)]
pub struct AttackEnv {
    /// Current simulation time.
    pub now: SimTime,
    /// The protocol slot the hook refers to (the slot under evaluation for
    /// [`Adversary::on_slot`], the current slot for activations).
    pub slot: u64,
    /// Number of groups in the session.
    pub n_groups: u32,
    /// The receiver's current honest subscription level / group.
    pub level: u32,
    /// Whether the session runs under SIGMA protection.
    pub protected: bool,
}

/// A primitive misbehaviour a protocol receiver executes on the
/// adversary's behalf. Strategies return these from their hooks; each
/// receiver type (FLID, replicated, threshold) owns the execution.
#[derive(Clone, Debug, PartialEq)]
pub enum AttackAction {
    /// Inflate the subscription: join every group up to `layer` (clamped
    /// to the session size) and claim that level from now on.
    Inflate {
        /// Highest 1-based group to grab; `u32::MAX` means "everything".
        layer: u32,
    },
    /// Raw IGMP joins for groups `1..=layer` — the per-slot hammering of
    /// the §4.2 attacker (SIGMA ignores these; classic IGMP obeys them).
    RawJoins {
        /// Highest 1-based group to join.
        layer: u32,
    },
    /// Submit `per_group` random guessed keys for each group up to
    /// `layer` ("numerous random keys in a hope that one … is correct",
    /// paper §4.2). A no-op on unprotected sessions.
    GuessKeys {
        /// Guessed keys per group per submission.
        per_group: u32,
        /// Highest 1-based group to guess for.
        layer: u32,
    },
    /// Drop back to the minimal level: leave everything above group 1 and
    /// clear any inflation (the "down" phase of churn attacks).
    LeaveHigh,
    /// Submit keys obtained out-of-band (collusion): `(group, key)` pairs
    /// for subscription slot `slot`, with 1-based group indices. The
    /// executor also joins the groups so granted traffic is delivered.
    SubmitKeys {
        /// Subscription slot the keys unlock.
        slot: u64,
        /// `(1-based group index, key)` pairs.
        pairs: Vec<(u32, Key)>,
    },
}

/// An attack strategy: scheduling plus four protocol hooks.
///
/// Implementations must be deterministic — any randomness comes from the
/// receiver's own [`DetRng`](mcc_simcore::DetRng) during action execution,
/// never from the strategy itself — so runs replay bit for bit.
pub trait Adversary: std::fmt::Debug + Send {
    /// Short label for matrices and plots, e.g. `inflate(10)`.
    fn label(&self) -> String;

    /// A fresh boxed copy (strategies with shared state, e.g.
    /// [`Colluders`], register a new member per clone).
    fn clone_box(&self) -> Box<dyn Adversary>;

    /// The next activation instant strictly after `after`, if any. The
    /// receiver schedules a timer for it and calls
    /// [`Adversary::on_activation`] when it fires.
    fn next_activation(&self, after: SimTime) -> Option<SimTime> {
        let _ = after;
        None
    }

    /// Timer hook: actions to execute at an activation instant (also
    /// called once when the receiver starts). Under a composite
    /// ([`All`]) this fires at the *union* of the members' schedules, so
    /// strategies with their own time grid must self-gate on `env.now`.
    fn on_activation(&mut self, env: &AttackEnv) -> Vec<AttackAction> {
        let _ = env;
        Vec::new()
    }

    /// Per-slot hook: actions to execute after the receiver evaluated a
    /// protocol slot.
    fn on_slot(&mut self, env: &AttackEnv) -> Vec<AttackAction> {
        let _ = env;
        Vec::new()
    }

    /// Key hook: the receiver reconstructed `keys` (1-based group index,
    /// key) valid for subscription slot `sub_slot`. Colluders publish
    /// them out-of-band here.
    fn on_key_packet(&mut self, env: &AttackEnv, sub_slot: u64, keys: &[(u32, Key)]) {
        let _ = (env, sub_slot, keys);
    }

    /// Congestion-signal hook: return `true` to suppress the honest
    /// decrease the protocol is about to take. May be called more than
    /// once per slot (once per decision point).
    fn on_congestion_signal(&mut self, env: &AttackEnv) -> bool {
        let _ = env;
        false
    }

    /// Subscription override: the level to claim instead of the honest
    /// `honest_level`. Levels above the honest one are capped by the keys
    /// actually held; levels below shrink the subscription (stealth).
    fn subscription_override(&self, env: &AttackEnv, honest_level: u32) -> u32 {
        let _ = env;
        honest_level
    }

    /// True when this strategy keeps its receiver eligible for the
    /// parallel-in-time core: it never draws from the world RNG and
    /// shares no state with receivers on other hosts. [`KeyGuess`]
    /// (random key trials) and [`Colluders`] (a shared key pool) must
    /// stay on the root shard, so the default is the safe `false`;
    /// composites delegate to their members.
    fn parallel_safe(&self) -> bool {
        false
    }

    /// True when, from `after` onward, every hook is guaranteed to stay a
    /// no-op forever: no activations, no per-slot actions, no vetoes, no
    /// overrides. Receiver cohorts use this to *contract*: a diverged
    /// bucket whose adversary has burnt out folds back into the honest
    /// bucket. The default is the safe `false` (never claim inertness);
    /// only strategies that can prove it ([`Honest`], an activated
    /// [`Timed`] over an inert inner, an [`All`] of inert members)
    /// override it.
    fn is_inert(&self, after: SimTime) -> bool {
        let _ = after;
        false
    }

    /// The instant before which every hook is guaranteed to be a no-op
    /// (exclusive), when the strategy can prove one: `Some(t)` means the
    /// receiver behaves exactly like an honest one on `[start, t)`.
    /// Receiver cohorts use this to *defer expansion* — an adversarial
    /// member rides inside the honest bucket until its onset instead of
    /// costing a full state machine from t = 0. `None` (the default)
    /// claims nothing and forces an individual bucket from the start.
    fn dormant_until(&self) -> Option<SimTime> {
        None
    }
}

impl Clone for Box<dyn Adversary> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Where an attacking receiver attaches in a multi-router topology.
///
/// The paper's damage story is about *placement relative to shared
/// bottlenecks*: a receiver hanging off a leaf edge router only congests
/// its own branch, while one grafted onto an interior router of a
/// distribution tree shares every upstream link with a whole subtree.
/// Scenario builders resolve a placement against the topology's receiver
/// attachment points (`mcc_core::topology` owns the mapping); on the
/// single-edge dumbbell every placement degenerates to the edge router.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Placement {
    /// Round-robin over the topology's attachment points (the honest
    /// default: receivers tile the leaves).
    #[default]
    Auto,
    /// Attachment point `i` (leaf `i` of a tree, arm `i` of a star, hop
    /// `i` of a parking lot; wraps modulo the point count).
    Leaf(usize),
    /// The router at `depth` on the path from the tree root to leaf
    /// `leaf` (`depth` equal to the tree depth is the leaf router
    /// itself). Non-tree topologies clamp `depth` to their router chain.
    Interior {
        /// Distance from the root (0 = the root itself).
        depth: u32,
        /// Leaf whose root path is walked.
        leaf: usize,
    },
}

/// A cloneable adversary handle for scenario specs: what
/// `ReceiverSpec::adversary` stores and receivers instantiate from. The
/// plan also carries the attacker's [`Placement`], so a scenario spec can
/// target the attack at a specific point of the topology.
#[derive(Debug)]
pub struct AttackPlan {
    strategy: Box<dyn Adversary>,
    placement: Placement,
}

impl AttackPlan {
    /// Wrap a strategy (attached at the default [`Placement::Auto`]).
    pub fn new(strategy: impl Adversary + 'static) -> AttackPlan {
        AttackPlan {
            strategy: Box::new(strategy),
            placement: Placement::Auto,
        }
    }

    /// The well-behaved receiver.
    pub fn honest() -> AttackPlan {
        AttackPlan::new(Honest)
    }

    /// Target the plan at a specific attachment point.
    pub fn at(mut self, placement: Placement) -> AttackPlan {
        self.placement = placement;
        self
    }

    /// Where the receiver running this plan attaches.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The strategy's display label.
    pub fn label(&self) -> String {
        self.strategy.label()
    }

    /// A fresh strategy instance for one receiver agent.
    pub fn build(&self) -> Box<dyn Adversary> {
        self.strategy.clone_box()
    }
}

impl Clone for AttackPlan {
    fn clone(&self) -> Self {
        AttackPlan {
            strategy: self.strategy.clone_box(),
            placement: self.placement,
        }
    }
}

impl Default for AttackPlan {
    fn default() -> Self {
        AttackPlan::honest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_simcore::SimDuration;

    #[test]
    fn honest_plan_is_inert() {
        let mut a = AttackPlan::honest().build();
        let env = AttackEnv {
            now: SimTime::ZERO,
            slot: 0,
            n_groups: 10,
            level: 1,
            protected: true,
        };
        assert!(a.next_activation(SimTime::ZERO).is_none());
        assert!(a.on_activation(&env).is_empty());
        assert!(a.on_slot(&env).is_empty());
        assert!(!a.on_congestion_signal(&env));
        assert_eq!(a.subscription_override(&env, 4), 4);
    }

    #[test]
    fn plans_carry_their_placement() {
        let plan = AttackPlan::new(InflateTo::all());
        assert_eq!(plan.placement(), Placement::Auto);
        let placed = plan.at(Placement::Interior { depth: 1, leaf: 0 });
        assert_eq!(
            placed.placement(),
            Placement::Interior { depth: 1, leaf: 0 }
        );
        assert_eq!(
            placed.clone().placement(),
            Placement::Interior { depth: 1, leaf: 0 },
            "clones keep the target"
        );
        assert_eq!(
            AttackPlan::honest().placement(),
            Placement::Auto,
            "honest receivers tile the leaves"
        );
    }

    #[test]
    fn plans_clone_into_independent_instances() {
        let plan = AttackPlan::new(Timed::at(
            SimTime::from_secs(5),
            JoinLeaveFlap::new(SimDuration::from_secs(2)),
        ));
        let a = plan.build();
        let b = plan.clone().build();
        assert_eq!(a.label(), b.label());
        assert_eq!(
            a.next_activation(SimTime::ZERO),
            Some(SimTime::from_secs(5))
        );
        assert_eq!(
            b.next_activation(SimTime::ZERO),
            Some(SimTime::from_secs(5))
        );
    }
}
