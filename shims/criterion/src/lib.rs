//! Minimal, dependency-free stand-in for the [`criterion`] benchmark harness.
//!
//! The build environment has no registry access, so the real `criterion`
//! cannot be fetched. This shim keeps the workspace's `benches/*.rs` files
//! compiling *and running* under `cargo bench`: it implements
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`] with a simple doubling calibration loop and a
//! mean-ns-per-iteration report. It does no statistical analysis, outlier
//! rejection or HTML reporting — swap the `criterion` entry of the root
//! `[workspace.dependencies]` back to crates.io for that.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark. The calibration loop doubles the
/// iteration count until one batch takes at least this long, so a benchmark
/// whose single iteration exceeds it runs exactly once per sample.
const TARGET_BATCH: Duration = Duration::from_millis(100);

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, 3, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: 3,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Criterion proper uses this as the bootstrap sample count; here it just
    /// bounds how many timed batches we average.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 10);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.samples, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut best = f64::INFINITY;
    let mut worst: f64 = 0.0;
    let mut sum = 0.0;
    for _ in 0..samples.max(1) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        best = best.min(b.ns_per_iter);
        worst = worst.max(b.ns_per_iter);
        sum += b.ns_per_iter;
    }
    let mean = sum / samples.max(1) as f64;
    println!(
        "{id:<40} time: [{} {} {}]",
        fmt_ns(best),
        fmt_ns(mean),
        fmt_ns(worst)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = start.elapsed();
            if dt >= TARGET_BATCH || n >= 1 << 24 {
                self.ns_per_iter = dt.as_nanos() as f64 / n as f64;
                return;
            }
            n *= 2;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| black_box(2) * 2));
        g.finish();
    }
}
