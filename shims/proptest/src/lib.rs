//! Minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no registry access, so the
//! real `proptest` cannot be fetched. This shim implements exactly the API
//! surface the workspace's property tests use, with the same semantics at
//! the call sites:
//!
//! * the [`proptest!`] macro (functions whose arguments are `name in strategy`
//!   bindings, run for many sampled cases),
//! * integer-range strategies (`0u64..1000`, `1u32..8`, …),
//! * [`collection::vec`](prop::collection::vec) with an exact size or a size
//!   range,
//! * [`bool::weighted`](prop::bool::weighted) and
//!   [`option::weighted`](prop::option::weighted),
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assert_ne!`].
//!
//! Sampling is fully deterministic: the case stream is seeded from the test
//! function's name, so failures reproduce without a persistence file. Set
//! `PROPTEST_CASES` to change the number of cases per test (default 64).
//!
//! When a registry is reachable, point the `proptest` entry of the root
//! `[workspace.dependencies]` back at crates.io; this shim then drops out of
//! the graph with no source changes.
//!
//! [`proptest`]: https://docs.rs/proptest

/// Deterministic SplitMix64 stream used to sample strategies.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// How a value is drawn from a strategy. The real crate separates strategies
/// from value trees (for shrinking); this shim does not shrink, so a strategy
/// is just a sampler.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            // `$t as u64` is trivial when `$t` = u64 — macro-width casts.
            #[allow(trivial_numeric_casts)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            // `$t as u64` is trivial when `$t` = u64 — macro-width casts.
            #[allow(trivial_numeric_casts)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width u64 inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy combinators under the same paths as the real crate.
pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Size specification for [`vec`]: an exact length or a half-open
        /// range of lengths.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                Self {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }

    pub mod bool {
        use crate::{Strategy, TestRng};

        /// `true` with probability `p`.
        pub fn weighted(p: f64) -> Weighted {
            Weighted(p)
        }

        pub struct Weighted(f64);

        impl Strategy for Weighted {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_f64() < self.0
            }
        }
    }

    pub mod option {
        use crate::{Strategy, TestRng};

        /// `Some(inner)` with probability `p`, else `None`.
        pub fn weighted<S>(p: f64, inner: S) -> OptionStrategy<S> {
            OptionStrategy { p, inner }
        }

        pub struct OptionStrategy<S> {
            p: f64,
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_f64() < self.p {
                    Some(self.inner.sample(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// Per-invocation configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: cases() }
    }
}

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Stable per-test seed so failures reproduce across runs and machines.
pub fn seed_for(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

#[macro_export]
macro_rules! proptest {
    // Leading `#![proptest_config(..)]` fixes the case count for the block.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(stringify!($name), config.cases, |rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                $body
            });
        }
    )*};
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), $crate::cases(), |rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                $body
            });
        }
    )*};
}

/// Drives one property: samples `cases` inputs from the per-test stream and
/// runs the body on each. Used by [`proptest!`]; not part of the real API.
pub fn run_cases(name: &str, cases: u32, mut body: impl FnMut(&mut TestRng)) {
    let mut rng = TestRng::new(seed_for(name));
    for _ in 0..cases {
        body(&mut rng);
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{Strategy, TestRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5u64..=5).sample(&mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn vec_respects_size_spec() {
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let exact = prop::collection::vec(0u8..4, 9).sample(&mut rng);
            assert_eq!(exact.len(), 9);
            let ranged = prop::collection::vec(0u64..10, 1..5).sample(&mut rng);
            assert!((1..5).contains(&ranged.len()));
        }
    }

    #[test]
    fn weighted_bool_is_biased() {
        let mut rng = TestRng::new(13);
        let hits = (0..10_000)
            .filter(|_| prop::bool::weighted(0.15).sample(&mut rng))
            .count();
        assert!((1000..2000).contains(&hits), "got {hits} of 10000");
    }

    #[test]
    fn weighted_option_is_biased_and_samples_inner() {
        let mut rng = TestRng::new(17);
        let mut somes = 0;
        for _ in 0..10_000 {
            if let Some(v) = prop::option::weighted(0.6, 3u64..9).sample(&mut rng) {
                assert!((3..9).contains(&v));
                somes += 1;
            }
        }
        assert!((5_000..7_000).contains(&somes), "got {somes} of 10000");
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::new(super::seed_for("x"));
        let mut b = TestRng::new(super::seed_for("x"));
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        /// The macro itself: bindings sample, asserts fire.
        #[test]
        fn macro_round_trip(n in 1u32..50, xs in prop::collection::vec(0u64..9, 0..20)) {
            prop_assert!((1..50).contains(&n));
            prop_assert!(xs.iter().all(|&x| x < 9));
            prop_assert_eq!(xs.len(), xs.len());
            prop_assert_ne!(n, 0);
        }
    }
}
