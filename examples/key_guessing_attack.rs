//! The §4.2 guessing attack against SIGMA, and its detection.
//!
//! A receiver without valid keys floods the edge router with random keys,
//! hoping one opens a group (success probability `y/2^b` per slot for `y`
//! guesses against `b`-bit keys). The router tallies distinct invalid
//! keys per interface and flags the interface once the tally crosses a
//! threshold — the paper's suggested countermeasure.
//!
//! ```text
//! cargo run --release --example key_guessing_attack
//! ```

use robust_multicast::core::{Dumbbell, DumbbellSpec, McastSessionSpec, ReceiverSpec, Variant};
use robust_multicast::flid::Behavior;
use robust_multicast::simcore::SimTime;

fn main() {
    // A protected session with one honest and one attacking receiver.
    let mut spec = DumbbellSpec::new(5, 500_000);
    spec.mcast = vec![McastSessionSpec {
        variant: Variant::FlidDs,
        n_groups: 10,
        receivers: vec![
            ReceiverSpec {
                behavior: Behavior::Inflate {
                    at: SimTime::from_secs(10),
                },
                ..ReceiverSpec::default()
            },
            ReceiverSpec::default(),
        ],
    }];
    let mut d = Dumbbell::build(spec);

    println!("Running 40 s; the attacker starts guessing keys at t = 10 s…\n");
    d.run_secs(40);

    let attacker_id = d.sessions[0].receivers[0];
    let honest_id = d.sessions[0].receivers[1];
    let attacker = d.receiver(attacker_id);
    println!(
        "attacker sent {} guessed-key subscriptions (10 keys each)",
        attacker.stats.guess_subscriptions
    );

    let sigma = d.sigma().expect("SIGMA installed");
    println!("router rejected keys: {}", sigma.stats.rejected_keys);
    println!("router blocked raw IGMP joins: {}", sigma.stats.raw_igmp_blocked);

    // The attacker's interface is the first receiver access link; its
    // LinkId follows the bottleneck pair and the sender-side pair.
    let world = &d.sim.world;
    let mut flagged = 0;
    for link in &world.links {
        if link.host_facing && sigma.suspected_guessing(link.id) {
            println!("guessing attack flagged on interface {}", link.id);
            flagged += 1;
        }
    }
    assert!(flagged >= 1, "the tally must flag the attacker's interface");

    let ga = d.throughput_bps(attacker_id, 15, 40);
    let gh = d.throughput_bps(honest_id, 15, 40);
    println!("\nthroughput after the attack: attacker {ga:.0} bps, honest {gh:.0} bps");
    println!("guessing 64-bit keys at ~10/slot: success probability ≈ 10/2^64 ≈ never.");
}
