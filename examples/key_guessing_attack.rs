//! The §4.2 guessing attack against SIGMA, and its detection — on the
//! `mcc-attack` adversary API.
//!
//! A receiver without valid keys runs `KeyGuess{rate: 10}`: it floods the
//! edge router with random keys, hoping one opens a group (success
//! probability `y/2^b` per slot for `y` guesses against `b`-bit keys).
//! The router tallies distinct invalid keys per interface and flags the
//! interface once the tally crosses a threshold — the paper's suggested
//! countermeasure.
//!
//! ```text
//! cargo run --release --example key_guessing_attack
//! ```

use robust_multicast::attack::{AttackPlan, KeyGuess, Timed};
use robust_multicast::core::{McastSessionSpec, ReceiverSpec, Scenario, Units, Variant};

fn main() {
    // A protected session with one honest and one guessing receiver.
    let attacker_plan = AttackPlan::new(Timed::at(10.secs(), KeyGuess { rate: 10 }));
    println!("attacker plan: {}", attacker_plan.label());
    let mut d = Scenario::dumbbell(500.kbps())
        .seed(5)
        .session(
            McastSessionSpec::new(Variant::FlidDs)
                .receiver(ReceiverSpec::new().adversary(attacker_plan))
                .receiver(ReceiverSpec::new()),
        )
        .build();

    println!("Running 40 s; the attacker starts guessing keys at t = 10 s…\n");
    d.run_secs(40);

    let attacker_id = d.sessions[0].receivers[0];
    let honest_id = d.sessions[0].receivers[1];
    let attacker = d.receiver(attacker_id);
    println!(
        "attacker sent {} guessed-key subscriptions (10 keys each)",
        attacker.stats.guess_subscriptions
    );

    let sigma = d.sigma().expect("SIGMA installed");
    println!("router rejected keys: {}", sigma.stats.rejected_keys);
    println!(
        "router blocked raw IGMP joins: {}",
        sigma.stats.raw_igmp_blocked
    );
    if let Some(slot) = sigma.stats.first_guess_alarm_slot {
        println!(
            "guessing alarm first crossed at slot {slot} (t ≈ {:.1} s)",
            slot as f64 * 0.25
        );
    }

    // The attacker's interface is flagged by the distinct-key tally.
    let world = &d.sim.world;
    let mut flagged = 0;
    for link in &world.links {
        if link.host_facing && sigma.suspected_guessing(link.id) {
            println!(
                "guessing attack flagged on interface {} (tally {})",
                link.id,
                sigma.guess_tally(link.id)
            );
            flagged += 1;
        }
    }
    assert!(flagged >= 1, "the tally must flag the attacker's interface");

    let ga = d.throughput_bps(attacker_id, 15, 40);
    let gh = d.throughput_bps(honest_id, 15, 40);
    println!("\nthroughput after the attack: attacker {ga:.0} bps, honest {gh:.0} bps");
    println!("guessing 64-bit keys at ~10/slot: success probability ≈ 10/2^64 ≈ never.");
}
