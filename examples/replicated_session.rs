//! Replicated multicast under DELTA/SIGMA (paper §3.1.2, Figure 5).
//!
//! A destination-set-grouping session: six groups carrying the same
//! content at 100 Kbps ×1.5 steps; the receiver hops between groups, and
//! the edge router checks a key on every hop.
//!
//! ```text
//! cargo run --release --example replicated_session
//! ```

use robust_multicast::flid::replicated::{ReplicatedReceiver, ReplicatedSender};
use robust_multicast::flid::FlidConfig;
use robust_multicast::netsim::prelude::*;
use robust_multicast::sigma::{SigmaConfig, SigmaEdgeModule};
use robust_multicast::simcore::{SimDuration, SimTime};

fn main() {
    let mut sim = Sim::new(2024, SimDuration::from_secs(1));
    let s = sim.add_node();
    let a = sim.add_node();
    let b = sim.add_node();
    let h = sim.add_node();
    sim.add_duplex_link(
        s,
        a,
        10_000_000,
        SimDuration::from_millis(10),
        Queue::drop_tail(1_000_000),
        Queue::drop_tail(1_000_000),
    );
    // 500 kbps bottleneck: group 5 (506 kbps) almost fits, group 4
    // (337 kbps) is the sustainable one.
    let buf = (2.0 * 500_000.0 * 0.08 / 8.0) as u64;
    sim.add_duplex_link(
        a,
        b,
        500_000,
        SimDuration::from_millis(20),
        Queue::drop_tail(buf),
        Queue::drop_tail(buf),
    );
    sim.add_duplex_link(
        b,
        h,
        10_000_000,
        SimDuration::from_millis(10),
        Queue::drop_tail(1_000_000),
        Queue::drop_tail(1_000_000),
    );

    let mut cfg = FlidConfig::paper(
        (1..=6).map(GroupAddr).collect(),
        GroupAddr(0),
        FlowId(1),
        true,
    );
    cfg.slot = SimDuration::from_millis(250);
    for g in cfg.groups.iter().chain([&cfg.control_group]) {
        sim.register_group(*g, s);
    }
    sim.set_edge_module(
        b,
        Box::new(SigmaEdgeModule::new(SigmaConfig::new(cfg.slot))),
    );

    let receiver = sim.add_agent(
        h,
        Box::new(ReplicatedReceiver::new(cfg.clone(), Some(b))),
        SimTime::from_millis(5),
    );
    sim.add_agent(
        s,
        Box::new(ReplicatedSender::new(cfg.clone())),
        SimTime::ZERO,
    );
    sim.finalize();

    println!("Running 40 s of a replicated (DSG-style) session…\n");
    sim.run_until(SimTime::from_secs(40));

    let r = sim.agent_as::<ReplicatedReceiver>(receiver).unwrap();
    println!("group-switch trace (time s → group):");
    for (t, g) in &r.trace {
        println!(
            "  {t:>6.2} s  group {g}  ({:.0} kbps)",
            cfg.cumulative_rate(*g) / 1000.0
        );
    }
    let bps = sim.monitor().agent_throughput_bps(
        receiver,
        SimTime::from_secs(15),
        SimTime::from_secs(40),
    );
    println!("\nsteady-state throughput: {bps:.0} bps on a 500 kbps bottleneck");
    println!("final group: {} of 6", r.group);
    let sigma = sim.edge_as::<SigmaEdgeModule>(b).unwrap();
    println!("router accepted keys: {}", sigma.stats.accepted_keys);
}
