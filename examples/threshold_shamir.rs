//! Threshold-based protocols via Shamir secret sharing (paper §3.1.2).
//!
//! Part 1 demonstrates the primitive: a level key split into `(k, n)`
//! shares, reconstruction with exactly `k`, and failure below `k` — the
//! information-theoretic heart of DELTA's support for RLM-style loss
//! thresholds.
//!
//! Part 2 runs an RLM-like session end to end: shares ride the packets,
//! a receiver within the 25 % loss threshold rebuilds the group key every
//! slot, and the SIGMA router grants access against it.
//!
//! ```text
//! cargo run --release --example threshold_shamir
//! ```

use robust_multicast::delta::threshold::{reconstruct, split, threshold_k};
use robust_multicast::flid::threshold_proto::{ThresholdReceiver, ThresholdSender};
use robust_multicast::flid::FlidConfig;
use robust_multicast::netsim::prelude::*;
use robust_multicast::sigma::{SigmaConfig, SigmaEdgeModule};
use robust_multicast::simcore::{DetRng, SimDuration, SimTime};

fn main() {
    // --- Part 1: the primitive ---------------------------------------
    let mut rng = DetRng::new(9);
    let n_packets = 20;
    let theta = 0.25;
    let k = threshold_k(n_packets, theta);
    let secret = 0x5EC2;
    let shares = split(secret, k, n_packets, &mut rng);
    println!("level key {secret:#06x} split into {n_packets} shares, threshold k = {k}");

    let got = reconstruct(&shares[0..k as usize]);
    println!("  with {k} shares (25 % loss): reconstructed {got:#06x}  ✔");
    assert_eq!(got, secret);

    let got = reconstruct(&shares[0..(k - 1) as usize]);
    println!(
        "  with {} shares (30 % loss): reconstructed {got:#06x}  ✘ (garbage)",
        k - 1
    );
    assert_ne!(got, secret);

    // --- Part 2: the protocol ----------------------------------------
    println!("\nRunning an RLM-style threshold session for 30 s…");
    let mut sim = Sim::new(77, SimDuration::from_secs(1));
    let s = sim.add_node();
    let a = sim.add_node();
    let b = sim.add_node();
    let h = sim.add_node();
    sim.add_duplex_link(
        s,
        a,
        10_000_000,
        SimDuration::from_millis(10),
        Queue::drop_tail(1_000_000),
        Queue::drop_tail(1_000_000),
    );
    let buf = (2.0 * 1_000_000.0 * 0.08 / 8.0) as u64;
    sim.add_duplex_link(
        a,
        b,
        1_000_000,
        SimDuration::from_millis(20),
        Queue::drop_tail(buf),
        Queue::drop_tail(buf),
    );
    sim.add_duplex_link(
        b,
        h,
        10_000_000,
        SimDuration::from_millis(10),
        Queue::drop_tail(1_000_000),
        Queue::drop_tail(1_000_000),
    );
    let mut cfg = FlidConfig::paper(
        (1..=6).map(GroupAddr).collect(),
        GroupAddr(0),
        FlowId(1),
        true,
    );
    cfg.slot = SimDuration::from_millis(250);
    for g in cfg.groups.iter().chain([&cfg.control_group]) {
        sim.register_group(*g, s);
    }
    sim.set_edge_module(
        b,
        Box::new(SigmaEdgeModule::new(SigmaConfig::new(cfg.slot))),
    );
    let receiver = sim.add_agent(
        h,
        Box::new(ThresholdReceiver::new(cfg.clone(), theta, Some(b))),
        SimTime::from_millis(5),
    );
    sim.add_agent(s, Box::new(ThresholdSender::new(cfg, theta)), SimTime::ZERO);
    sim.finalize();
    sim.run_until(SimTime::from_secs(30));

    let r = sim.agent_as::<ThresholdReceiver>(receiver).unwrap();
    println!("group trace: {:?}", r.trace);
    println!(
        "final group: {} of 6, key failures: {}",
        r.group, r.key_failures
    );
    let bps = sim.monitor().agent_throughput_bps(
        receiver,
        SimTime::from_secs(10),
        SimTime::from_secs(30),
    );
    println!("steady-state throughput: {bps:.0} bps");
}
