//! Quickstart: one FLID-DS session on the paper's dumbbell.
//!
//! Builds a protected multicast session (10 groups, ×1.5 rates) behind a
//! 1 Mbps bottleneck, runs 60 simulated seconds, and prints the receiver's
//! subscription trace, throughput and the SIGMA router's counters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use robust_multicast::core::{ascii_chart, Scenario, Series, Units, Variant};

fn main() {
    // A dumbbell with one protected session and a single honest receiver,
    // declared with the fluent scenario builder.
    let mut d = Scenario::dumbbell(1.mbps())
        .seed(42)
        .sessions(1, Variant::FlidDs)
        .build();

    println!("Running 60 s of simulated time…");
    d.run_secs(60);

    let receiver_id = d.sessions[0].receivers[0];
    let receiver = d.receiver(receiver_id);
    println!("\nSubscription level trace (time s → level):");
    for (t, level) in &receiver.level_trace {
        println!("  {t:>6.2} s  level {level}");
    }

    let series = Series::from_values("receiver", 0.0, 1.0, &d.series_bps(receiver_id, 60));
    println!("\n{}", ascii_chart(&[series], 80, 15, "throughput (bps)"));

    let avg = d.throughput_bps(receiver_id, 20, 60);
    println!("steady-state average: {avg:.0} bps (bottleneck 1 Mbps)");
    println!("final level: {} of 10", receiver.level());
    println!("subscriptions sent: {}", receiver.stats.subscriptions);

    let sigma = d.sigma().expect("protected session installs SIGMA");
    println!("\nSIGMA edge-router counters: {:?}", sigma.stats);
}
