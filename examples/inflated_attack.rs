//! The paper's headline result, side by side (Figures 1 and 7), built on
//! the `mcc-attack` adversary API.
//!
//! Scenario: two multicast and two TCP sessions share a 1 Mbps bottleneck
//! (250 Kbps fair share each). Halfway through, multicast receiver F1
//! runs `Timed(at, InflateTo::all() + KeyGuess(10))` — it grabs every
//! group, keeps hammering raw IGMP joins and guesses keys each slot.
//!
//! * Under **FLID-DL** the attack pays off: F1 grabs most of the link.
//! * Under **FLID-DS** (DELTA + SIGMA) the edge router refuses every
//!   group F1 holds no key for, and the allocation stays fair.
//!
//! ```text
//! cargo run --release --example inflated_attack
//! ```

use robust_multicast::attack::{All, AttackPlan, InflateTo, KeyGuess, Timed};
use robust_multicast::core::{
    ascii_chart, McastSessionSpec, Params, ReceiverSpec, Scenario, Series, Units, Variant,
};

fn main() {
    let duration = 120u64;
    let attack_at = 60u64;
    let params = Params::default();

    for (variant, fig) in [
        (Variant::FlidDl, "Figure 1 (FLID-DL, unprotected)"),
        (Variant::FlidDs, "Figure 7 (FLID-DS, protected)"),
    ] {
        println!("==================== {fig} ====================");
        // The Figure-1/7 attacker, composed from strategy-library parts.
        let attacker = AttackPlan::new(Timed::boxed(
            attack_at.secs(),
            Box::new(All::of(vec![
                Box::new(InflateTo::all()),
                Box::new(KeyGuess { rate: 10 }),
            ])),
        ));
        println!("attacker plan: {}\n", attacker.label());
        let mut d = Scenario::dumbbell(1.mbps())
            .seed(7)
            .session(
                McastSessionSpec::new(variant).receiver(ReceiverSpec::new().adversary(attacker)),
            )
            .sessions(1, variant)
            .tcp(2)
            .build();
        d.run_secs(duration);

        let agents = [
            ("F1", d.sessions[0].receivers[0]),
            ("F2", d.sessions[1].receivers[0]),
            ("T1", d.tcp[0].sink),
            ("T2", d.tcp[1].sink),
        ];
        let series: Vec<Series> = agents
            .iter()
            .map(|(label, a)| {
                Series::from_values(label, 0.0, 1.0, &d.series_bps(*a, duration))
                    .smoothed(params.smoothing)
            })
            .collect();
        println!("{}", ascii_chart(&series, 90, 16, "throughput (bps)"));
        println!("averages after the attack starts (t > {attack_at} s):");
        let fair = 250_000.0;
        for (label, agent) in &agents {
            let avg = d.throughput_bps(*agent, attack_at + 5, duration);
            println!(
                "  {:>3}: {:>8.0} bps   ({:+.0} % of fair share)",
                label,
                avg,
                (avg - fair) / fair * 100.0
            );
        }
        if let Some(sigma) = d.sigma() {
            println!(
                "  router: {} keys rejected, {} raw IGMP joins ignored",
                sigma.stats.rejected_keys, sigma.stats.raw_igmp_blocked
            );
        }
        println!();
    }
    println!("The attacker's gain disappears once DELTA + SIGMA guard the groups.");
}
