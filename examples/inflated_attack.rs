//! The paper's headline result, side by side (Figures 1 and 7).
//!
//! Scenario: two multicast and two TCP sessions share a 1 Mbps bottleneck
//! (250 Kbps fair share each). Halfway through, multicast receiver F1
//! inflates its subscription to all ten groups.
//!
//! * Under **FLID-DL** the attack pays off: F1 grabs most of the link.
//! * Under **FLID-DS** (DELTA + SIGMA) the edge router refuses every
//!   group F1 holds no key for, and the allocation stays fair.
//!
//! ```text
//! cargo run --release --example inflated_attack
//! ```

use robust_multicast::core::ascii_chart;
use robust_multicast::core::experiments::attack_experiment;
use robust_multicast::core::{Params, Variant};

fn main() {
    let duration = 120;
    let attack_at = 60;

    for (variant, fig) in [
        (Variant::FlidDl, "Figure 1 (FLID-DL, unprotected)"),
        (Variant::FlidDs, "Figure 7 (FLID-DS, protected)"),
    ] {
        println!("==================== {fig} ====================");
        let r = attack_experiment(variant, duration, attack_at, 7, &Params::default());
        println!(
            "{}",
            ascii_chart(&r.series, 90, 16, "throughput (bps)")
        );
        println!("averages after the attack starts (t > {attack_at} s):");
        for (s, avg) in r.series.iter().zip(&r.post_attack_avg_bps) {
            let fair = 250_000.0;
            println!(
                "  {:>3}: {:>8.0} bps   ({:+.0} % of fair share)",
                s.label,
                avg,
                (avg - fair) / fair * 100.0
            );
        }
        println!();
    }
    println!("The attacker's gain disappears once DELTA + SIGMA guard the groups.");
}
