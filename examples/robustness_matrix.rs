//! The registered `matrix_robustness` experiment as an ASCII table:
//! every `mcc-attack` strategy against every defense variant.
//!
//! Each cell shows `honest-goodput loss % / attacker excess %`, plus a
//! `⚡t` marker when the edge router locked the attacker out (or flagged
//! its guessing tally) `t` seconds after onset. Rows are strategies,
//! columns defenses; FLID-DL is the unprotected baseline.
//!
//! ```text
//! cargo run --release --example robustness_matrix            # full 60 s cells
//! MCC_QUICK=1 cargo run --release --example robustness_matrix # 30 s cells
//! ```

use robust_multicast::core::experiments::robustness_matrix;
use robust_multicast::core::RunConfig;

fn main() {
    let quick = RunConfig::from_env().quick;
    let duration = if quick { 30 } else { 60 };
    let onset = duration / 3;
    println!(
        "robustness matrix: {duration} s cells, attack onset t = {onset} s, seed 17\n\
         cell = honest loss % / attacker excess %  (⚡t: detection t s after onset)\n"
    );
    let m = robustness_matrix(duration, onset, 17);

    let col = 18usize;
    print!("{:<16}", "strategy \\ defense");
    for d in &m.defenses {
        print!("{d:>col$}");
    }
    println!();
    for &strategy in &m.strategies {
        print!("{strategy:<16}");
        for &defense in &m.defenses {
            let cell = m
                .cells
                .iter()
                .find(|c| c.strategy == strategy && c.defense == defense)
                .expect("complete matrix");
            let mut text = format!(
                "{:+.0}%/{:+.0}%",
                cell.damage.honest_loss_pct, cell.damage.attacker_excess_pct
            );
            if let Some(t) = cell.damage.time_to_lockout_secs {
                text.push_str(&format!(" ⚡{t:.0}s"));
            }
            print!("{text:>col$}");
        }
        println!();
    }

    println!(
        "\nReading the matrix: the FLID-DL column is the vulnerability (inflation\n\
         devastates honest flows); every protected column contains it — the attacker\n\
         gains nothing and the router's counters expose the attempt."
    );
}
