//! # robust-multicast — umbrella crate
//!
//! Reproduction of *"Robustness to Inflated Subscription in Multicast
//! Congestion Control"* (Gorinsky, Jain, Vin, Zhang — UT Austin TR2003-09 /
//! SIGCOMM 2003 line of work).
//!
//! This crate re-exports the whole workspace under one roof so examples,
//! integration tests and downstream users can write `use robust_multicast::…`.
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every figure.
//!
//! * [`simcore`] — deterministic discrete-event engine,
//! * [`netsim`] — packet-level network simulator (the NS-2 substitute),
//! * [`tcp`] — TCP Reno cross traffic,
//! * [`traffic`] — CBR / on-off sources,
//! * [`delta`] — DELTA in-band key distribution (paper §3.1),
//! * [`sigma`] — SIGMA edge-router group management (paper §3.2),
//! * [`attack`] — the pluggable adversary subsystem (strategies + schedulers),
//! * [`flid`] — FLID-DL, FLID-DS and the replicated/threshold variants,
//! * [`core`] — scenario builders, experiments and metrics,
//! * [`obs`] — sim-time flight recorder, metrics and trace sinks.

pub use mcc_attack as attack;
pub use mcc_core as core;
pub use mcc_delta as delta;
pub use mcc_flid as flid;
pub use mcc_netsim as netsim;
pub use mcc_obs as obs;
pub use mcc_sigma as sigma;
pub use mcc_simcore as simcore;
pub use mcc_tcp as tcp;
pub use mcc_traffic as traffic;
